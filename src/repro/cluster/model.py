"""The NetSparse cluster model: exact trace semantics + rate-limit timing.

For one kernel iteration on an N-node cluster this model:

1. 1D-partitions the matrix and builds every node's idx scan trace.
2. Applies RIG batching + Idx-Filter/Pending-Table semantics exactly
   (:func:`repro.core.filtering.filter_and_coalesce`) to decide which
   remote idxs become wire PRs.
3. Concatenates PR streams with the window model
   (:func:`repro.core.concat.window_concat`) at the NIC and again at
   the ToR switch (cross-node), producing per-flow wire bytes.
4. Runs each rack's merged PR stream through an exact LRU Property
   Cache with delayed insertion (a missing property only becomes
   cacheable after its response returns).
5. Derives time from the interacting rate limits: RIG command
   dispatch/pipelining, concatenation-SRAM occupancy, host injection
   and ejection ports, and fabric link drains — the same
   throughput-bound idealization the paper applies to its baselines —
   plus a zero-load RTT term.

Scale note: window and in-flight parameters are expressed as fractions
of the per-node stream so the behaviour is invariant under the matrix
downscaling documented in DESIGN.md.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.config import NetSparseConfig
from repro.core import batchmode, kernels, reusedist
from repro.core.concat import ConcatStats, window_concat, window_concat_totals
from repro.core.filtering import filter_and_coalesce, first_occurrence_positions
from repro.core.pcache import PropertyCache, n_sets_for
from repro.core.pcache_fast import delayed_cache_hits
from repro.core.rig import rig_generation_time
from repro.results import CommResult
from repro.network.topology import Dragonfly, HyperX, LeafSpine, Topology
from repro.partition import OneDPartition, cached_partition

__all__ = [
    "batch_stats",
    "build_cluster_topology",
    "reset_batch_state",
    "simulate_netsparse",
    "NetSparseKnobs",
]


# -- batch-mode logical memos ------------------------------------------
#
# With REPRO_BATCH enabled, sweep evaluation becomes single-pass: every
# stage output that is a pure function of *logical* inputs (which
# partition, which per-node clamped batch size, which cache geometry)
# is memoized under that logical key, so the planner's fused groups —
# and sequential probe loops like the autotune ladder — stop replaying
# identical stages.  Keys never hash array content: object identity
# tokens stand in for the heavyweight inputs (matrix, partition,
# topology, config), which the suite/trace/topology caches already
# share across a sweep.  Everything here is bit-exact: a memo hit
# returns the same arrays (or a pickled copy) the miss path computed.

_MEMO_LOCK = threading.RLock()
_MISS = object()


class _BoundedMemo:
    """FIFO-bounded memo with approximate byte accounting."""

    def __init__(self, budget_bytes: int):
        self.budget = int(budget_bytes)
        self.data: "OrderedDict" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with _MEMO_LOCK:
            entry = self.data.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                return None
            self.hits += 1
            return entry[0]

    def put(self, key, value, nbytes: int) -> None:
        nbytes = max(int(nbytes), 1)
        if nbytes > self.budget:
            return
        with _MEMO_LOCK:
            if key in self.data:
                return
            while self.bytes + nbytes > self.budget and self.data:
                _, (_, old_bytes) = self.data.popitem(last=False)
                self.bytes -= old_bytes
            self.data[key] = (value, nbytes)
            self.bytes += nbytes

    def clear(self) -> None:
        with _MEMO_LOCK:
            self.data.clear()
            self.bytes = 0
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        return {"entries": len(self.data), "bytes": self.bytes,
                "hits": self.hits, "misses": self.misses}


def _memo_budget_mb() -> int:
    raw = os.environ.get("REPRO_BATCH_MEMO_MB", "").strip()
    return int(raw) if raw else 256


_B = _memo_budget_mb() * (1 << 20) // 8
_ANCHORS = _BoundedMemo(_B)       # (part, node) -> first-occurrence anchor
_FBASE = _BoundedMemo(_B)         # + window -> batch-invariant drop masks
_MASKS = _BoundedMemo(_B)         # + clamped batch -> issued node stream
_NIC_CONCAT = _BoundedMemo(_B // 4)   # + window -> (bytes, packets)
_MERGES = _BoundedMemo(2 * _B)    # rack merge of member streams
_PROFILES = _BoundedMemo(2 * _B)  # reuse-distance profile per merge
_HITS = _BoundedMemo(_B)          # + geometry -> cache hit mask
_SIMS = _BoundedMemo(_B // 2)     # whole-simulation result templates
_RIGGEN = _BoundedMemo(_B // 8)   # scalar rig makespan per (nnz, params)
_ALL_MEMOS = {
    "anchors": _ANCHORS, "fbase": _FBASE, "masks": _MASKS,
    "nic_concat": _NIC_CONCAT, "merges": _MERGES, "profiles": _PROFILES,
    "hits": _HITS, "sims": _SIMS, "riggen": _RIGGEN,
}

#: merge_key -> how many distinct-geometry hit masks were requested for
#: that stream.  A profile is only built on the second request: a
#: geometry *sweep* amortizes the unique-sort, while a single-geometry
#: workload (e.g. the autotune ladder, where every probe's stream is
#: new) goes straight to the pinned replay kernel with zero overhead.
_PROFILE_REQS: Dict[tuple, int] = {}

#: (topology token, src, dst) -> route, since routes are static per
#: topology and the fabric share loops look the same pairs up for
#: every sweep point.
_ROUTES: Dict[tuple, list] = {}

_token_counter = itertools.count(1)
_token_by_id: Dict[int, tuple] = {}


def _obj_token(obj) -> Optional[int]:
    """A stable int identity for a live object (``None`` if it cannot
    be weak-referenced).  Tokens die with the object, so a recycled
    ``id()`` can never resurrect a stale memo entry."""
    key = id(obj)
    with _MEMO_LOCK:
        entry = _token_by_id.get(key)
        if entry is not None and entry[1]() is obj:
            return entry[0]
        try:
            ref = weakref.ref(
                obj, lambda _r, key=key: _token_by_id.pop(key, None)
            )
        except TypeError:
            return None
        token = next(_token_counter)
        _token_by_id[key] = (token, ref)
        return token


def reset_batch_state() -> None:
    """Drop every batch-mode memo (tests and A/B benchmarks)."""
    for memo in _ALL_MEMOS.values():
        memo.clear()
    with _MEMO_LOCK:
        _PROFILE_REQS.clear()
        _ROUTES.clear()
    reusedist.reset_profile_stats()


def batch_stats() -> dict:
    """Memo + profile counters for telemetry and the bench block."""
    out = {name: memo.stats() for name, memo in _ALL_MEMOS.items()}
    out["profile"] = reusedist.profile_stats()
    return out


def build_cluster_topology(config: NetSparseConfig) -> Topology:
    """The Table 5 / §9.6 cluster fabrics by name."""
    if config.topology == "leafspine":
        return LeafSpine(
            n_racks=config.n_racks,
            nodes_per_rack=config.nodes_per_rack,
            n_spines=8,
            link_bandwidth=config.link_bandwidth,
        )
    if config.topology == "hyperx":
        return HyperX(shape=(4, 4, 2), hosts_per_switch=4, width=4,
                      link_bandwidth=config.link_bandwidth)
    if config.topology == "dragonfly":
        return Dragonfly(n_groups=4, switches_per_group=8, hosts_per_switch=4,
                         global_link_count=4,
                         link_bandwidth=config.link_bandwidth)
    raise ValueError(f"unknown topology {config.topology!r}")


@dataclass(frozen=True)
class NetSparseKnobs:
    """Scale-invariant model knobs (fractions of per-node streams).

    ``inflight_frac`` — how far (as a fraction of a node's remote-idx
    stream) a PR stays outstanding before its response lands; governs
    filtering vs coalescing.  ``cache_inflight_frac`` — the same for
    the switch cache's delayed inserts.
    """

    inflight_frac: float = 0.03
    cache_inflight_frac: float = 0.03


class DelayedInsertCache:
    """Property Cache front-end with in-flight response modelling.

    A read that misses triggers an insert only ``delay`` stream
    positions later (its response's return).  Duplicate in-flight
    misses both travel (the switch has no MSHR-style coalescing).

    This is the *reference* backend for the cache stage; the default
    fast path is :func:`repro.core.pcache_fast.property_cache_hits`,
    golden-tested to reproduce this class bit-for-bit.
    """

    def __init__(self, cache: PropertyCache, delay: int):
        self.cache = cache
        self.delay = max(int(delay), 0)
        self._pending: deque = deque()

    def process(self, idxs: np.ndarray) -> np.ndarray:
        hits = np.zeros(idxs.size, dtype=bool)
        pending = self._pending
        cache = self.cache
        for i, idx in enumerate(idxs.tolist()):
            while pending and pending[0][0] <= i:
                cache.insert(pending.popleft()[1])
            if cache.lookup(idx):
                hits[i] = True
            else:
                pending.append((i + self.delay, idx))
        while pending:
            cache.insert(pending.popleft()[1])
        return hits


#: Backwards-compatible alias (pre-rename private name).
_DelayedInsertCache = DelayedInsertCache


def _merge_rack_streams(
    per_node: List[Tuple[np.ndarray, ...]], nodes: List[int]
) -> Dict[str, np.ndarray]:
    """Interleave node streams by per-node position (concurrent scan)."""
    srcs, poss, idxs, owners = [], [], [], []
    for node, (pos, idx, owner) in zip(nodes, per_node):
        srcs.append(np.full(pos.size, node, dtype=np.int64))
        poss.append(pos)
        idxs.append(idx)
        owners.append(owner)
    src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
    pos = np.concatenate(poss) if poss else np.zeros(0, dtype=np.int64)
    idx = np.concatenate(idxs) if idxs else np.zeros(0, dtype=np.int64)
    owner = np.concatenate(owners) if owners else np.zeros(0, dtype=np.int64)
    order = np.lexsort((src, pos))
    return {"src": src[order], "pos": pos[order],
            "idx": idx[order], "owner": owner[order]}


def _rack_cache_hits(
    rack_streams: List[np.ndarray],
    config: NetSparseConfig,
    pcache_bytes: int,
    payload: int,
    knobs: "NetSparseKnobs",
) -> List[np.ndarray]:
    """Hit masks for every rack's merged PR stream, backend-dispatched.

    The racks' replays are independent deterministic kernels, so all
    three backends — ``reference`` (the per-element front-end),
    ``fast`` (the fused array kernel) and ``pool`` (the same kernel
    fanned across a process pool) — return identical bits; only the
    wall time differs.
    """
    delays = [
        max(int(knobs.cache_inflight_frac * m_idx.size), 1)
        for m_idx in rack_streams
    ]
    if not kernels.is_fast():
        out = []
        for m_idx, delay in zip(rack_streams, delays):
            if m_idx.size == 0:
                out.append(np.zeros(0, dtype=bool))
                continue
            pcache = PropertyCache(
                capacity_bytes=pcache_bytes,
                ways=config.pcache_ways,
                n_segments=config.pcache_segments,
                segment_bytes=config.pcache_min_line,
            )
            pcache.configure(max(payload, 1))
            out.append(DelayedInsertCache(pcache, delay).process(m_idx))
        return out
    n_sets = n_sets_for(
        pcache_bytes, config.pcache_ways, max(payload, 1),
        config.pcache_segments, config.pcache_min_line,
    )
    tasks = [
        (m_idx, n_sets, config.pcache_ways, delay, "lru")
        for m_idx, delay in zip(rack_streams, delays)
        if m_idx.size
    ]
    if kernels.is_pool() and len(tasks) > 1:
        from repro.core import poolexec

        results = poolexec.map_cache_replays(tasks)
    else:
        results = [delayed_cache_hits(*t) for t in tasks]
    out, it = [], iter(results)
    for m_idx in rack_streams:
        if m_idx.size == 0:
            out.append(np.zeros(0, dtype=bool))
        else:
            out.append(next(it)[0])
    return out


def _concat_stage_bytes(
    dests: np.ndarray,
    payload: int,
    config: NetSparseConfig,
    window_prs: int,
) -> Tuple[Dict[int, int], ConcatStats]:
    """Per-destination wire bytes after one concatenation stage."""
    maxp = config.max_prs_per_packet(payload)
    stats = window_concat(dests, max_prs_per_packet=maxp, window_prs=window_prs)
    byte_map = stats.wire_bytes_per_dest(
        pr_payload=payload,
        header_upper=config.header_upper,
        header_concat=config.header_concat,
        header_concat_solo=config.header_concat_solo,
        header_pr=config.header_pr,
    )
    return byte_map, stats


def _concat_stage_totals(
    dests: np.ndarray,
    payload: int,
    config: NetSparseConfig,
    window_prs: int,
) -> Tuple[int, int]:
    """``(wire bytes, packets)`` of one concatenation stage — the lean
    batch-mode form for consumers that never look at individual
    destinations (integer-exact; see
    :func:`repro.core.concat.window_concat_totals`)."""
    maxp = config.max_prs_per_packet(payload)
    return window_concat_totals(
        dests, maxp, window_prs, payload,
        header_upper=config.header_upper,
        header_concat=config.header_concat,
        header_concat_solo=config.header_concat_solo,
        header_pr=config.header_pr,
    )


def _pr_rate(config: NetSparseConfig, payload: int, issue_frac: float) -> float:
    """Aggregate PR rate through one node's concatenation point."""
    scan = config.n_client_units * config.snic_freq * max(issue_frac, 1e-3)
    resp_drain = config.link_bandwidth / (config.header_pr + payload)
    return min(scan, resp_drain)


def _concat_windows(
    config: NetSparseConfig, payload: int, issue_frac: float
) -> Tuple[int, int]:
    """(NIC, switch) window sizes in PRs for the delay-queue model."""
    rate = _pr_rate(config, payload, issue_frac)
    nic_delay = config.concat_delay_cycles_nic / config.snic_freq
    sw_delay = config.concat_delay_cycles_switch / config.switch_freq
    w_nic = max(int(nic_delay * rate), 1)
    # The switch sees the merged streams of the whole rack.
    w_sw = max(int(sw_delay * rate * config.nodes_per_rack), 1)
    return w_nic, w_sw


def _concat_sram_rate_cap(
    config: NetSparseConfig, payload: int
) -> float:
    """PRs/s one concatenation point can hold without exhausting its
    SRAM while PRs wait out the delay (the Figure 17 falloff)."""
    delay_s = config.concat_delay_cycles_nic / config.snic_freq
    if delay_s <= 0:
        return float("inf")
    per_pr = config.header_pr + payload
    return config.concat_sram_bytes / (delay_s * per_pr)


def simulate_netsparse(
    matrix,
    k: int,
    config: Optional[NetSparseConfig] = None,
    topology: Optional[Topology] = None,
    rig_batch: Optional[int] = None,
    scale: float = 1.0,
    knobs: NetSparseKnobs = NetSparseKnobs(),
    partition: Optional[OneDPartition] = None,
) -> CommResult:
    """Simulate one iteration's communication under NetSparse.

    ``rig_batch`` is in *paper-scale* nonzeros (the 8k/32k of §8.2);
    ``scale`` is this matrix's nnz over the paper matrix's nnz (see
    DESIGN.md).  Scale multiplies the quantities tied to absolute
    matrix size — the batch, the per-command host overhead, and the
    Property Cache capacity — so hit rates, batching tradeoffs and
    speedup ratios survive the downscaling.  Scale-free quantities
    (delay windows, link rates, headers) stay physical.

    ``partition`` overrides the default equal-rows 1D partition (e.g.
    :func:`repro.partition.balanced_by_nnz`).
    """
    config = config or NetSparseConfig()
    topo = topology or build_cluster_topology(config)
    n = config.n_nodes
    feats = config.features
    payload = config.property_bytes(k)
    part = partition or cached_partition(matrix, n)
    if part.n_nodes != n:
        raise ValueError("partition node count must match the config")
    if not 0.0 < scale:
        raise ValueError("scale must be positive")
    if rig_batch is None:
        rig_batch = config.rig_batch_nonzeros
    rig_batch = max(int(rig_batch * scale), 1)
    cmd_overhead = config.rig_cmd_overhead * scale
    pcache_bytes = int(config.pcache_bytes * scale)

    # Batch mode: identity tokens key the logical memos.  The
    # whole-simulation memos are skipped while telemetry is enabled so
    # `netsparse profile` always sees every stage span/counter.
    fastpath = batchmode.batch_enabled()
    pt = tt = None
    if fastpath:
        pt = _obj_token(part)
        tt = _obj_token(topo)
        fastpath = pt is not None and tt is not None
    sim_key = tmpl_base = tmpl_key = None
    if fastpath and not telemetry.enabled():
        mt = _obj_token(matrix)
        ct = _obj_token(config)
        if mt is not None and ct is not None:
            sim_key = ("sim", mt, pt, tt, ct, knobs, k, rig_batch,
                       repr(float(scale)))
            blob = _SIMS.get(sim_key)
            if blob is not None:
                return pickle.loads(blob)
            # Template key: ``rig_batch`` is deliberately absent.  Two
            # probes whose *clamped per-node* batches (bkeys, appended
            # after stage 1) coincide share all traffic stages; only
            # the PR-generation makespan sees the raw batch, and that
            # is overlaid per probe.
            tmpl_base = ("sim2", mt, pt, tt, ct, knobs, k,
                         repr(float(scale)))
    traces = part.node_traces()

    # ---- stage 1: per-node filtering/coalescing ----------------------
    node_streams = []            # (pos, idx, owner) of issued PRs per node
    bkeys: List[Optional[int]] = []  # canonical per-node batch (memo key)
    pr_gen_time = np.zeros(n)
    useful_payload = np.zeros(n)
    n_candidates = n_issued = n_filtered = n_coalesced = 0
    with telemetry.span("cluster.stage.filter", matrix=matrix.name, k=k):
        for node, tr in enumerate(traces):
            remote_idx = tr.remote_idxs
            remote_owner = tr.remote_owners
            remote_pos = tr.remote_pos
            useful_payload[node] = tr.unique_remote_count() * payload
            n_candidates += remote_idx.size
            if feats.rig_offload and remote_idx.size:
                remote_frac = remote_idx.size / max(tr.n_nonzeros, 1)
                batch_remote = max(int(rig_batch * remote_frac), 1)
                window = max(int(knobs.inflight_frac * remote_idx.size), 1)
                # Batches >= the stream put every idx in unit 0, so the
                # clamped value is this node's canonical batch identity.
                bkey = min(batch_remote, int(remote_idx.size))
                mask_key = (
                    ("mask", pt, node, config.n_client_units,
                     feats.filtering, feats.coalescing,
                     knobs.inflight_frac, bkey)
                    if fastpath else None
                )
                cached = _MASKS.get(mask_key) if mask_key else None
                if cached is None and fastpath:
                    # Only coalescing depends on the batch size (via
                    # the issuing unit); the filter drops and the
                    # coalesce-eligible positions are batch-invariant
                    # per node, so a batch sweep recomputes two
                    # vectorized compares instead of the whole filter.
                    base_key = ("fbase", pt, node, knobs.inflight_frac,
                                feats.filtering, feats.coalescing)
                    base = _FBASE.get(base_key)
                    if base is None:
                        anchor_key = ("fp", pt, node)
                        fp = _ANCHORS.get(anchor_key)
                        if fp is None:
                            fp = first_occurrence_positions(remote_idx)
                            _ANCHORS.put(anchor_key, fp, fp.nbytes)
                        pos = np.arange(remote_idx.size, dtype=np.int64)
                        is_dup = pos != fp
                        completed = fp <= pos - window
                        drop_filter = (
                            is_dup & completed if feats.filtering
                            else np.zeros(remote_idx.size, bool)
                        )
                        eligible = (
                            is_dup & ~completed if feats.coalescing
                            else np.zeros(remote_idx.size, bool)
                        )
                        base = (drop_filter, eligible, fp)
                        _FBASE.put(base_key, base,
                                   drop_filter.nbytes * 2 + fp.nbytes)
                    drop_filter, eligible, fp = base
                    pos = np.arange(remote_idx.size, dtype=np.int64)
                    unit_of = (pos // batch_remote) % config.n_client_units
                    drop_coalesce = eligible & (unit_of == unit_of[fp])
                    mask = ~(drop_filter | drop_coalesce)
                    cached = (
                        remote_pos[mask], remote_idx[mask],
                        remote_owner[mask], int(drop_filter.sum()),
                        int(drop_coalesce.sum()), int(mask.sum()),
                    )
                    if mask_key:
                        _MASKS.put(
                            mask_key, cached,
                            sum(a.nbytes for a in cached[:3]) + 24,
                        )
                elif cached is None:
                    fr = filter_and_coalesce(
                        remote_idx,
                        n_units=config.n_client_units,
                        batch_size=batch_remote,
                        inflight_window=window,
                        enable_filtering=feats.filtering,
                        enable_coalescing=feats.coalescing,
                    )
                    mask = fr.issued_mask
                    cached = (
                        remote_pos[mask], remote_idx[mask],
                        remote_owner[mask], fr.n_filtered, fr.n_coalesced,
                        fr.n_issued,
                    )
                stream = cached[:3]
                n_filtered += cached[3]
                n_coalesced += cached[4]
                n_issued += cached[5]
            else:
                bkey = None
                stream = (remote_pos.copy(), remote_idx.copy(),
                          remote_owner.copy())
                n_issued += int(remote_idx.size)
            bkeys.append(bkey)
            node_streams.append(stream)
            if fastpath:
                # The rig makespan is a pure scalar function of these
                # five numbers — nodes with equal nonzero counts (and
                # every sweep point that leaves the batch alone) share
                # one evaluation of the max-plus scan.
                rg_key = ("rg", tr.n_nonzeros, config.n_client_units,
                          rig_batch, repr(config.snic_freq),
                          repr(cmd_overhead))
                rg = _RIGGEN.get(rg_key)
                if rg is None:
                    rg = rig_generation_time(
                        tr.n_nonzeros,
                        config.n_client_units,
                        rig_batch,
                        freq=config.snic_freq,
                        cmd_overhead=cmd_overhead,
                    )
                    _RIGGEN.put(rg_key, rg, 64)
                pr_gen_time[node] = rg
            else:
                pr_gen_time[node] = rig_generation_time(
                    tr.n_nonzeros,
                    config.n_client_units,
                    rig_batch,
                    freq=config.snic_freq,
                    cmd_overhead=cmd_overhead,
                )
            # Windowed (sharded) traces drop their materialized windows
            # once their selections are copied out, keeping the resident
            # set bounded by one node's trace.
            release = getattr(tr, "release", None)
            if release is not None:
                release()
    telemetry.count("cluster.filter.candidates", n_candidates,
                    matrix=matrix.name)
    telemetry.count("cluster.filter.drops", n_filtered, matrix=matrix.name)
    telemetry.count("cluster.filter.coalesced", n_coalesced,
                    matrix=matrix.name)
    telemetry.count("cluster.filter.issued", n_issued, matrix=matrix.name)

    if tmpl_base is not None:
        tmpl_key = tmpl_base + (tuple(bkeys),)
        blob = _SIMS.get(tmpl_key)
        if blob is not None:
            # Identical traffic under a different raw batch: overlay
            # the freshly computed PR-generation makespan on the
            # template and rebuild the stage-4 maxima with the exact
            # expressions of the timing stage.
            result = pickle.loads(blob)
            st = result.extras["stage_times"]
            per_node_time = np.maximum.reduce(
                [pr_gen_time, st["up"], st["down"], st["pcie"],
                 st["server"], st["concat"]]
            )
            fabric_time = result.extras["fabric_time"]
            if feats.concat_nic:
                drain = config.concat_delay_cycles_nic / config.snic_freq
            else:
                drain = 0.0
            rtt = topo.rtt(0, n - 1) * scale
            result.pr_gen_time = pr_gen_time
            st["pr_gen"] = pr_gen_time
            result.per_node_time = per_node_time
            result.total_time = (
                max(float(per_node_time.max()), fabric_time)
                + rtt + drain * scale
            )
            result.extras["rig_batch"] = rig_batch
            return result

    issue_frac = n_issued / max(n_candidates, 1)
    w_nic, w_sw = _concat_windows(config, payload, issue_frac)
    if not feats.concat_nic:
        w_nic = 1
    read_window_sw = w_sw if feats.concat_switch else 1

    # ---- stage 2: per-rack cache + read traffic -----------------------
    rack_of = np.array([topo.rack_of(i) for i in range(n)])
    racks: Dict[int, List[int]] = {}
    for node in range(n):
        racks.setdefault(int(rack_of[node]), []).append(node)

    up_bytes = np.zeros(n)
    down_bytes = np.zeros(n)
    fabric_loads = np.zeros(topo.n_links)
    link_bw = np.array([ln.bandwidth for ln in topo.links])
    n_packets_total = 0
    cache_lookups = cache_hits = 0
    miss_records = []            # surviving reads, to be served by owners

    def _route_fabric(src: int, dst: int, nbytes: float) -> None:
        if tt is not None:
            rk = (tt, src, dst)
            hop = _ROUTES.get(rk)
            if hop is None:
                hop = topo.route(src, dst)[1:-1]
                _ROUTES[rk] = hop
        else:
            hop = topo.route(src, dst)[1:-1]
        for lid in hop:
            fabric_loads[lid] += nbytes

    with telemetry.span("cluster.stage.cache", matrix=matrix.name, k=k):
        rack_list = sorted(racks.items())
        merge_keys = []
        merged_list = []
        for rack, members in rack_list:
            merge_key = (
                ("merge", pt, tt, rack, config.n_client_units,
                 feats.rig_offload, feats.filtering, feats.coalescing,
                 knobs.inflight_frac, tuple(bkeys[m] for m in members))
                if fastpath else None
            )
            merged = _MERGES.get(merge_key) if merge_key else None
            if merged is None:
                merged = _merge_rack_streams(
                    [node_streams[m] for m in members], members
                )
                if merge_key:
                    _MERGES.put(merge_key, merged,
                                sum(a.nbytes for a in merged.values()))
            merge_keys.append(merge_key)
            merged_list.append(merged)
        # Property Cache at the ToR middle pipes — all racks' replays
        # are independent, so they dispatch as one batch (the ``pool``
        # backend fans them across worker processes).  In batch mode
        # each merged stream's reuse-distance profile scores the
        # geometry instead (bit-identical; golden-tested), and both the
        # profile and the scored hit mask are memoized so a knob sweep
        # replays nothing.
        if feats.property_cache:
            if fastpath and kernels.is_fast() and not kernels.is_pool():
                n_sets = n_sets_for(
                    pcache_bytes, config.pcache_ways, max(payload, 1),
                    config.pcache_segments, config.pcache_min_line,
                )
                rack_hits = []
                for merge_key, merged in zip(merge_keys, merged_list):
                    m_idx = merged["idx"]
                    if m_idx.size == 0:
                        rack_hits.append(np.zeros(0, dtype=bool))
                        continue
                    delay = max(
                        int(knobs.cache_inflight_frac * m_idx.size), 1
                    )
                    hits_key = (
                        ("hits", merge_key, n_sets, config.pcache_ways,
                         delay)
                        if merge_key else None
                    )
                    hits = _HITS.get(hits_key) if hits_key else None
                    if hits is None:
                        prof = (
                            _PROFILES.get(merge_key) if merge_key else None
                        )
                        if prof is None and merge_key:
                            with _MEMO_LOCK:
                                reqs = _PROFILE_REQS.get(merge_key, 0) + 1
                                _PROFILE_REQS[merge_key] = reqs
                            if reqs >= 2:
                                prof = reusedist.build_profile(m_idx)
                                _PROFILES.put(merge_key, prof,
                                              m_idx.nbytes * 4)
                        if prof is not None:
                            hits = prof.score(n_sets, config.pcache_ways,
                                              delay, "lru")
                        else:
                            # First (and possibly only) geometry asked
                            # of this stream: the pinned replay kernel
                            # is cheaper than profiling for a single
                            # point, and the masks agree bit-for-bit.
                            hits = delayed_cache_hits(
                                m_idx, n_sets, config.pcache_ways, delay,
                                policy="lru",
                            )[0]
                        if hits_key:
                            _HITS.put(hits_key, hits, hits.nbytes)
                    rack_hits.append(hits)
            else:
                rack_hits = _rack_cache_hits(
                    [m["idx"] for m in merged_list], config, pcache_bytes,
                    payload, knobs,
                )
        else:
            rack_hits = [
                np.zeros(m["idx"].size, dtype=bool) for m in merged_list
            ]
        nic_maxp = config.max_prs_per_packet(0)
        nic_headers = (config.header_upper, config.header_concat,
                       config.header_concat_solo, config.header_pr)
        for (rack, members), merged, hits in zip(rack_list, merged_list,
                                                 rack_hits):
            m_src, m_pos = merged["src"], merged["pos"]
            m_idx, m_owner = merged["idx"], merged["owner"]

            # NIC-stage read bytes (host -> ToR) per member node.
            for node in members:
                pos, idx, owner = node_streams[node]
                nic_key = (
                    ("nic", pt, node, config.n_client_units,
                     feats.rig_offload, feats.filtering, feats.coalescing,
                     knobs.inflight_frac, bkeys[node], w_nic, nic_maxp,
                     nic_headers)
                    if fastpath else None
                )
                nic_val = _NIC_CONCAT.get(nic_key) if nic_key else None
                if nic_val is None:
                    if fastpath:
                        nic_val = _concat_stage_totals(
                            owner, 0, config, w_nic
                        )
                    else:
                        byte_map, stats = _concat_stage_bytes(
                            owner, 0, config, w_nic
                        )
                        nic_val = (sum(byte_map.values()), stats.n_packets)
                    if nic_key:
                        _NIC_CONCAT.put(nic_key, nic_val, 64)
                up_bytes[node] += nic_val[0]
                if not feats.concat_switch:
                    n_packets_total += nic_val[1]

            if feats.property_cache and m_idx.size:
                cache_lookups += int(m_idx.size)
                cache_hits += int(hits.sum())

            # Cache-hit responses: generated at the ToR, delivered in-rack.
            if hits.any():
                hit_src = m_src[hits]
                byte_map, stats = _concat_stage_bytes(
                    hit_src, payload, config, read_window_sw
                )
                for node_id, b in byte_map.items():
                    down_bytes[node_id] += b
                n_packets_total += stats.n_packets

            # Misses continue toward their owners (switch-stage concat).
            miss = ~hits
            if miss.any():
                ms, mp = m_src[miss], m_pos[miss]
                mi, mo = m_idx[miss], m_owner[miss]
                byte_map, stats = _concat_stage_bytes(
                    mo, 0, config, read_window_sw
                )
                n_packets_total += stats.n_packets
                # Distribute rack-stage bytes over (src, owner) flows by
                # PR share.
                pair_keys = ms * n + mo
                uniq_pairs, pair_counts = np.unique(
                    pair_keys, return_counts=True
                )
                owner_totals = {
                    int(d): cnt
                    for d, cnt in zip(*np.unique(mo, return_counts=True))
                }
                for key, cnt in zip(uniq_pairs.tolist(), pair_counts.tolist()):
                    s, d = divmod(key, n)
                    share = byte_map[d] * cnt / owner_totals[d]
                    _route_fabric(s, d, share)
                    down_bytes[d] += share
                miss_records.append(
                    {"src": ms, "pos": mp, "idx": mi, "owner": mo}
                )
    telemetry.count("pcache.lookups", cache_lookups, matrix=matrix.name)
    telemetry.count("pcache.hits", cache_hits, matrix=matrix.name)

    # ---- stage 3: responses from owners -------------------------------
    if miss_records:
        all_src = np.concatenate([r["src"] for r in miss_records])
        all_pos = np.concatenate([r["pos"] for r in miss_records])
        all_owner = np.concatenate([r["owner"] for r in miss_records])
    else:
        all_src = all_pos = all_owner = np.zeros(0, dtype=np.int64)

    served_per_node = np.zeros(n, dtype=np.int64)
    resp_window_sw = w_sw if feats.concat_switch else 1
    with telemetry.span("cluster.stage.respond", matrix=matrix.name, k=k):
        owner_rack = (
            rack_of[all_owner] if fastpath and all_owner.size else None
        )
        for rack, members in sorted(racks.items()):
            # Responses produced by owners in this rack, merged at its ToR.
            if owner_rack is not None:
                sel = owner_rack == rack
            else:
                sel = np.isin(all_owner, members)
            if not sel.any():
                continue
            r_src, r_pos, r_owner = all_src[sel], all_pos[sel], all_owner[sel]
            order = np.lexsort((r_owner, r_pos))
            r_src, r_pos, r_owner = (
                r_src[order], r_pos[order], r_owner[order]
            )

            # NIC-stage response bytes per owner.
            if fastpath:
                # One stable owner sort replaces the per-owner mask
                # scans; within each owner the stream order (and hence
                # every byte count) is unchanged.
                oorder = np.argsort(r_owner, kind="stable")
                ro = r_owner[oorder]
                rs = r_src[oorder]
                lo_b = np.searchsorted(ro, members, side="left")
                hi_b = np.searchsorted(ro, members, side="right")
                for owner, lo, hi in zip(members, lo_b.tolist(),
                                         hi_b.tolist()):
                    if hi <= lo:
                        continue
                    served_per_node[owner] += hi - lo
                    nbytes, npkts = _concat_stage_totals(
                        rs[lo:hi], payload, config, w_nic
                    )
                    up_bytes[owner] += nbytes
                    if not feats.concat_switch:
                        n_packets_total += npkts
            else:
                for owner in members:
                    osel = r_owner == owner
                    if not osel.any():
                        continue
                    served_per_node[owner] += int(osel.sum())
                    byte_map, stats = _concat_stage_bytes(
                        r_src[osel], payload, config, w_nic
                    )
                    up_bytes[owner] += sum(byte_map.values())
                    if not feats.concat_switch:
                        n_packets_total += stats.n_packets

            # Switch-stage response bytes toward each requester.
            byte_map, stats = _concat_stage_bytes(
                r_src, payload, config, resp_window_sw
            )
            n_packets_total += stats.n_packets
            pair_keys = r_owner * n + r_src
            uniq_pairs, pair_counts = np.unique(pair_keys, return_counts=True)
            dest_totals = {
                int(d): cnt
                for d, cnt in zip(*np.unique(r_src, return_counts=True))
            }
            for key, cnt in zip(uniq_pairs.tolist(), pair_counts.tolist()):
                o, s = divmod(key, n)
                share = byte_map[s] * cnt / dest_totals[s]
                _route_fabric(o, s, share)
                down_bytes[s] += share

    # ---- stage 4: timing ----------------------------------------------
    with telemetry.span("cluster.stage.timing", matrix=matrix.name, k=k):
        t_up = up_bytes / config.link_bandwidth
        t_down = down_bytes / config.link_bandwidth
        t_pcie = down_bytes / config.pcie_bandwidth
        t_server = served_per_node / (
            (config.n_rig_units - config.n_client_units) * config.snic_freq
        )
        per_node_prs = np.array(
            [node_streams[i][0].size for i in range(n)], dtype=np.float64
        )
        if feats.concat_nic:
            cap = _concat_sram_rate_cap(config, payload)
            t_concat = per_node_prs / cap
            drain = config.concat_delay_cycles_nic / config.snic_freq
        else:
            t_concat = np.zeros(n)
            drain = 0.0
        per_node_time = np.maximum.reduce(
            [pr_gen_time, t_up, t_down, t_pcie, t_server, t_concat]
        )
        fabric_time = (
            float((fabric_loads / link_bw).max()) if topo.n_links else 0.0
        )
        # Fixed latencies scale with the matrix downscaling like every
        # other absolute time constant (DESIGN.md §5) — at paper scale
        # they are negligible against millisecond totals, and must stay
        # negligible.
        rtt = topo.rtt(0, n - 1) * scale
        total_time = (
            max(float(per_node_time.max()), fabric_time) + rtt + drain * scale
        )

    telemetry.count("concat.packets", n_packets_total, matrix=matrix.name)
    if n_packets_total:
        telemetry.observe("concat.prs_per_packet",
                          n_issued / n_packets_total, matrix=matrix.name)

    result = CommResult(
        scheme="netsparse",
        matrix_name=matrix.name,
        k=k,
        n_nodes=n,
        total_time=total_time,
        per_node_time=per_node_time,
        recv_wire_bytes=down_bytes,
        sent_wire_bytes=up_bytes,
        useful_payload_bytes=useful_payload,
        link_bandwidth=config.link_bandwidth,
        n_pr_candidates=n_candidates,
        n_prs_issued=n_issued,
        n_filtered=n_filtered,
        n_coalesced=n_coalesced,
        n_packets=n_packets_total,
        cache_lookups=cache_lookups,
        cache_hits=cache_hits,
        pr_gen_time=pr_gen_time,
        extras={
            "fabric_time": fabric_time,
            "rig_batch": rig_batch,
            "window_nic": w_nic,
            "window_switch": w_sw,
            # Per-node stage breakdown — consumed by repro.faults to
            # attribute analytic penalties to the stages a fault hits.
            "stage_times": {
                "pr_gen": pr_gen_time,
                "up": t_up,
                "down": t_down,
                "pcie": t_pcie,
                "server": t_server,
                "concat": t_concat,
            },
        },
    )
    if sim_key is not None:
        # Stored as pickled bytes: a memo hit deserializes a *fresh*
        # result, so callers (fault injection, report post-processing)
        # can mutate theirs without corrupting the template.
        blob = pickle.dumps(result)
        _SIMS.put(sim_key, blob, len(blob))
        if tmpl_key is not None:
            _SIMS.put(tmpl_key, blob, len(blob))
    return result
