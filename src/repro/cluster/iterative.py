"""Multi-iteration kernel execution (§2.1).

Sparse kernels iterate: the output property array of one iteration
becomes the input of the next, and in GNN-style applications the
matrix itself changes between iterations (neighbour sampling).  Two
consequences for NetSparse the single-shot model does not show:

- the Idx Filter and the Property Caches must be reset every iteration
  (the properties' *values* changed, so yesterday's cached property is
  stale), which the paper's data-plane-updated cache makes cheap; and
- per-iteration time varies with the sampled structure.

This driver runs N iterations, resampling the matrix when asked, and
aggregates timing/traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.cluster.model import simulate_netsparse
from repro.results import CommResult
from repro.sparse.matrix import COOMatrix
from repro.sparse.shards import as_coo

__all__ = ["IterativeResult", "run_iterations", "sample_matrix"]


def sample_matrix(
    matrix: COOMatrix, keep_fraction: float, seed: int
) -> COOMatrix:
    """GNN neighbour sampling: keep each nonzero with probability
    ``keep_fraction`` (per-iteration edge sampling, §2.1's "the
    structure of the sparse matrix may change")."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    if keep_fraction == 1.0:
        return matrix
    matrix = as_coo(matrix)   # edge sampling needs the full nonzero arrays
    rng = np.random.default_rng(seed)
    keep = rng.random(matrix.nnz) < keep_fraction
    return COOMatrix(
        matrix.n_rows, matrix.n_cols,
        matrix.rows[keep], matrix.cols[keep],
        matrix.vals[keep] if matrix.vals is not None else None,
        f"{matrix.name}-sampled",
    )


@dataclass
class IterativeResult:
    """Aggregate of a multi-iteration run."""

    per_iteration: List[CommResult]

    @property
    def n_iterations(self) -> int:
        return len(self.per_iteration)

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.per_iteration)

    @property
    def mean_time(self) -> float:
        return self.total_time / max(self.n_iterations, 1)

    @property
    def time_cv(self) -> float:
        """Coefficient of variation across iterations (sampling jitter)."""
        times = np.array([r.total_time for r in self.per_iteration])
        if times.size < 2 or times.mean() == 0:
            return 0.0
        return float(times.std() / times.mean())

    @property
    def total_wire_bytes(self) -> float:
        return float(
            sum(r.recv_wire_bytes.sum() for r in self.per_iteration)
        )


def run_iterations(
    matrix: COOMatrix,
    k: int,
    n_iterations: int,
    config: Optional[NetSparseConfig] = None,
    topology=None,
    sample_fraction: float = 1.0,
    scale: float = 1.0,
    rig_batch: Optional[int] = None,
    seed: int = 0,
) -> IterativeResult:
    """Run ``n_iterations`` of a kernel, optionally edge-sampling the
    matrix each iteration.  Filter/cache state resets per iteration
    (fresh ``simulate_netsparse`` call — the §6.2 control-plane reset)."""
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    results = []
    for it in range(n_iterations):
        it_matrix = sample_matrix(matrix, sample_fraction, seed + it)
        results.append(
            simulate_netsparse(it_matrix, k, config, topology,
                               rig_batch=rig_batch, scale=scale)
        )
    return IterativeResult(per_iteration=results)
