"""Compatibility shim: :class:`CommResult` lives in :mod:`repro.results`
(a neutral module, so baselines and the cluster package can both import
it without a cycle)."""

from repro.results import CommResult

__all__ = ["CommResult"]
