"""Numerically real distributed kernel execution.

This is the functional counterpart of the timing models: it actually
*runs* SpMM / SpMV / SDDMM the way the distributed system would — every
node computes on its 1D partition using only its own property shard
plus the remote properties delivered by the (filtered, coalesced)
NetSparse gather — and returns the numeric result together with the
communication statistics.  The output is bit-identical to the
single-node reference kernels by construction, which is the
reproduction's core correctness invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.core.filtering import FilterResult, filter_and_coalesce
from repro.partition import OneDPartition, cached_partition
from repro.sparse.matrix import COOMatrix
from repro.sparse.shards import as_coo

__all__ = ["DistributedRun", "distributed_spmm", "distributed_spmv",
           "distributed_sddmm"]


@dataclass
class DistributedRun:
    """Numeric output plus gather accounting of a distributed kernel."""

    output: np.ndarray
    n_nodes: int
    pr_candidates: int            # remote nonzero references scanned
    prs_issued: int               # after filtering/coalescing
    properties_moved: int         # distinct remote properties delivered

    @property
    def fc_rate(self) -> float:
        if self.pr_candidates == 0:
            return 0.0
        return 1.0 - self.prs_issued / self.pr_candidates


def _gather_node_properties(
    trace,
    source: np.ndarray,
    config: NetSparseConfig,
    part: OneDPartition,
    node: int,
) -> tuple:
    """Fetch one node's remote properties through the filter pipeline.

    Returns the node's property table (zeros outside what it owns or
    fetched — touching those would be a correctness bug the tests would
    catch) and the gather counters.
    """
    remote_idx = trace.remote_idxs
    fr: FilterResult = filter_and_coalesce(
        remote_idx,
        n_units=config.n_client_units,
        batch_size=max(remote_idx.size // (config.n_client_units * 2), 1),
        inflight_window=max(remote_idx.size // 32, 1),
    )
    fetched = np.unique(remote_idx[fr.issued_mask])
    needed = np.unique(remote_idx)
    if not np.array_equal(fetched, needed):
        raise AssertionError(
            "filter/coalesce dropped a first request — invariant broken"
        )
    table = np.zeros_like(source)
    lo, hi = part.col_starts[node], part.col_starts[node + 1]
    table[lo:hi] = source[lo:hi]
    table[fetched] = source[fetched]
    return table, remote_idx.size, fr.n_issued, fetched.size


def distributed_spmm(
    matrix: COOMatrix,
    b: np.ndarray,
    n_nodes: int,
    config: Optional[NetSparseConfig] = None,
) -> DistributedRun:
    """Distributed ``C = A @ B`` over ``n_nodes`` 1D partitions."""
    matrix = as_coo(matrix)   # numeric execution indexes the full arrays
    config = config or NetSparseConfig(n_nodes=n_nodes)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 1:
        b = b[:, None]
    if b.shape[0] != matrix.n_cols:
        raise ValueError(f"b must have {matrix.n_cols} rows")
    part = cached_partition(matrix, n_nodes)
    vals = (
        matrix.vals
        if matrix.vals is not None
        else np.ones(matrix.nnz, dtype=np.float64)
    )
    order = np.argsort(matrix.rows * matrix.n_cols + matrix.cols,
                       kind="stable")
    rows_s, cols_s, vals_s = (matrix.rows[order], matrix.cols[order],
                              vals[order])

    out = np.zeros((matrix.n_rows, b.shape[1]))
    candidates = issued = moved = 0
    for node, trace in enumerate(part.node_traces()):
        table, n_cand, n_iss, n_moved = _gather_node_properties(
            trace, b, config, part, node
        )
        candidates += n_cand
        issued += n_iss
        moved += n_moved
        row_lo, row_hi = part.row_starts[node], part.row_starts[node + 1]
        sel = (rows_s >= row_lo) & (rows_s < row_hi)
        np.add.at(out, rows_s[sel],
                  vals_s[sel, None] * table[cols_s[sel]])
    return DistributedRun(
        output=out,
        n_nodes=n_nodes,
        pr_candidates=candidates,
        prs_issued=issued,
        properties_moved=moved,
    )


def distributed_spmv(
    matrix: COOMatrix,
    x: np.ndarray,
    n_nodes: int,
    config: Optional[NetSparseConfig] = None,
) -> DistributedRun:
    """Distributed ``y = A @ x`` (K=1 SpMM)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.shape[0] != matrix.n_cols:
        raise ValueError(f"x must have shape ({matrix.n_cols},)")
    run = distributed_spmm(matrix, x[:, None], n_nodes, config)
    run.output = run.output[:, 0]
    return run


def distributed_sddmm(
    matrix: COOMatrix,
    u: np.ndarray,
    v: np.ndarray,
    n_nodes: int,
    config: Optional[NetSparseConfig] = None,
) -> DistributedRun:
    """Distributed SDDMM: ``out[i,j] = A[i,j] * (u[i] . v[j])``.

    Row factors ``u`` are local under 1D partitioning (like outputs);
    column factors ``v`` are the remote properties, gathered exactly
    like SpMM inputs.  Returns nonzero values in the matrix's
    canonical (row, col) order.
    """
    matrix = as_coo(matrix)   # numeric execution indexes the full arrays
    config = config or NetSparseConfig(n_nodes=n_nodes)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape[0] != matrix.n_rows or v.shape[0] != matrix.n_cols:
        raise ValueError("u/v row counts must match the matrix")
    if u.shape[1:] != v.shape[1:]:
        raise ValueError("u and v must share K")
    part = cached_partition(matrix, n_nodes)
    vals = (
        matrix.vals
        if matrix.vals is not None
        else np.ones(matrix.nnz, dtype=np.float64)
    )
    order = np.argsort(matrix.rows * matrix.n_cols + matrix.cols,
                       kind="stable")
    rows_s, cols_s, vals_s = (matrix.rows[order], matrix.cols[order],
                              vals[order])

    out_vals = np.zeros(matrix.nnz)
    candidates = issued = moved = 0
    for node, trace in enumerate(part.node_traces()):
        table, n_cand, n_iss, n_moved = _gather_node_properties(
            trace, v, config, part, node
        )
        candidates += n_cand
        issued += n_iss
        moved += n_moved
        row_lo, row_hi = part.row_starts[node], part.row_starts[node + 1]
        sel = (rows_s >= row_lo) & (rows_s < row_hi)
        dots = np.einsum("ij,ij->i", u[rows_s[sel]], table[cols_s[sel]])
        out_vals[sel] = vals_s[sel] * dots
    return DistributedRun(
        output=out_vals,
        n_nodes=n_nodes,
        pr_candidates=candidates,
        prs_issued=issued,
        properties_moved=moved,
    )
