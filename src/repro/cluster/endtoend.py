"""End-to-end strong-scaling model (Figures 13, 14, 21).

Combines a communication scheme's :class:`CommResult` with the per-node
compute model.  The paper notes communication and computation
"(partially) overlap"; ``overlap`` interpolates between fully serial
phases (0.0, the default — which lands NetSparse at roughly half of
the no-communication ideal, as the paper reports) and perfect overlap
(1.0, where the longer phase hides the shorter).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.accel.spade import SpadeConfig, spmm_compute_time
from repro.results import CommResult
from repro.partition import cached_partition

__all__ = ["EndToEndResult", "end_to_end_time", "single_node_time",
           "per_node_compute_times"]


@dataclass
class EndToEndResult:
    """One (matrix, K, scheme) end-to-end execution."""

    comm: CommResult
    compute_time: float        # max per-node compute time
    total_time: float
    single_node_time: float

    @property
    def speedup_over_single_node(self) -> float:
        return self.single_node_time / self.total_time

    @property
    def ideal_speedup(self) -> float:
        """Speedup of a hypothetical system with zero communication."""
        return self.single_node_time / self.compute_time

    @property
    def comm_to_comp_ratio(self) -> float:
        """Figure 14's communication / computation ratio."""
        if self.compute_time == 0:
            return float("inf")
        return self.comm.total_time / self.compute_time


def per_node_compute_times(
    matrix, k: int, n_nodes: int, accel: SpadeConfig = SpadeConfig()
) -> np.ndarray:
    """Compute time of each node's partition on the accelerator model."""
    part = cached_partition(matrix, n_nodes)
    times = np.zeros(n_nodes)
    for node, tr in enumerate(part.node_traces()):
        unique_cols = int(np.unique(tr.idxs).size) if tr.idxs.size else 0
        rows = len(part.rows_of(node))
        times[node] = spmm_compute_time(tr.n_nonzeros, rows, unique_cols, k,
                                        accel)
    return times


def single_node_time(
    matrix, k: int, accel: SpadeConfig = SpadeConfig()
) -> float:
    """The whole kernel on one node (no communication)."""
    counter = getattr(matrix, "unique_col_count", None)
    if counter is not None:     # sharded: one shard resident at a time
        unique_cols = int(counter())
    else:
        unique_cols = int(np.unique(matrix.cols).size)
    return spmm_compute_time(matrix.nnz, matrix.n_rows, unique_cols, k, accel)


def end_to_end_time(
    matrix,
    k: int,
    comm: CommResult,
    accel: SpadeConfig = SpadeConfig(),
    overlap: float = 0.0,
) -> EndToEndResult:
    """End-to-end time of one iteration: compute + (1-overlap) * comm."""
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    compute = float(per_node_compute_times(matrix, k, comm.n_nodes,
                                           accel).max())
    serial = compute + comm.total_time
    overlapped = max(compute, comm.total_time)
    total = overlap * overlapped + (1.0 - overlap) * serial
    return EndToEndResult(
        comm=comm,
        compute_time=compute,
        total_time=total,
        single_node_time=single_node_time(matrix, k, accel),
    )
