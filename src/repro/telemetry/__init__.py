"""Unified instrumentation: metrics, tracing, and profiling.

The subsystem has three layers:

1. :mod:`repro.telemetry.registry` — the process-wide
   :class:`MetricsRegistry` (counters / gauges / histograms under
   stable dotted names), wall-clock and simulated-time spans, and the
   zero-overhead-when-disabled module-level recording API
   (``telemetry.count(...)``, ``telemetry.span(...)``).
2. :mod:`repro.telemetry.export` — JSON metrics dumps, CSV, and Chrome
   ``trace_event`` files loadable in Perfetto.
3. :mod:`repro.telemetry.profile` — ``netsparse profile <experiment>``:
   run one experiment fully instrumented and write all three artifacts.

Telemetry is disabled by default and every simulator's results are
bit-identical whether it is enabled or not — recording never feeds
back.  Enable it per scope::

    from repro import telemetry
    with telemetry.telemetry_scope() as reg:
        run_experiment("table7", scale="tiny")
        print(reg.counters["cluster.filter.drops"].value)

Metric name catalogue: see ``docs/api.md`` (telemetry section).
"""

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeRecord,
    SpanRecord,
    active,
    add_span,
    count,
    disable,
    enable,
    enabled,
    observe,
    probe,
    set_gauge,
    span,
    telemetry_scope,
)
from repro.telemetry.export import (
    chrome_trace_dict,
    load_chrome_trace,
    metrics_csv_lines,
    metrics_dict,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.profile import (
    ProfileResult,
    breakdown_lines,
    breakdown_rows,
    profile_experiment,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeRecord",
    "ProfileResult",
    "SpanRecord",
    "active",
    "add_span",
    "breakdown_lines",
    "breakdown_rows",
    "chrome_trace_dict",
    "count",
    "disable",
    "enable",
    "enabled",
    "load_chrome_trace",
    "metrics_csv_lines",
    "metrics_dict",
    "observe",
    "probe",
    "profile_experiment",
    "set_gauge",
    "span",
    "telemetry_scope",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]
