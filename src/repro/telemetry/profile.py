"""Experiment profiling: run one experiment under full telemetry.

``netsparse profile <experiment>`` lands here.  Profiling runs the
experiment on a **fresh serial, uncached** execution engine — cached or
pooled jobs would skip (or hide, in worker processes) the instrumented
code paths — with a :class:`MetricsRegistry` active, then writes three
artifacts next to each other::

    profile_<exp>_<scale>.json         metrics dump (counters/histograms/spans)
    profile_<exp>_<scale>.trace.json   Chrome trace_event file (Perfetto)
    profile_<exp>_<scale>.csv          flat metric table

The profiled experiment's tables are bit-identical to an unprofiled
run: telemetry only *records*, it never feeds back into a simulator.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.telemetry.export import (
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.registry import MetricsRegistry, telemetry_scope

__all__ = ["ProfileResult", "breakdown_lines", "breakdown_rows",
           "profile_experiment"]

#: Counters the breakdown always surfaces (in this order), when present.
KEY_COUNTERS = [
    "cluster.filter.candidates",
    "cluster.filter.drops",
    "cluster.filter.coalesced",
    "cluster.filter.issued",
    "pcache.lookups",
    "pcache.hits",
    "concat.packets",
    "engine.jobs",
    "engine.executed",
    "dessim.prs.issued",
    "faults.injected",
    "faults.events",
    "faults.watchdog.attempts",
    "faults.watchdog.timeouts",
]


@dataclass
class ProfileResult:
    """One profiled experiment run and where its artifacts went."""

    exp_id: str
    scale: str
    table: object                      # the experiment's ExpTable
    registry: MetricsRegistry
    json_path: str
    trace_path: str
    csv_path: str


def profile_experiment(
    exp_id: str,
    scale: str = "small",
    out_dir: str = ".",
    registry: Optional[MetricsRegistry] = None,
) -> ProfileResult:
    """Run ``exp_id`` instrumented and write the three artifacts."""
    # Imported lazily: profile is reachable from the CLI before the
    # (heavier) experiment registry is needed.
    from repro.experiments import EXPERIMENTS, list_experiments
    from repro.parallel import ExecutionEngine, engine_scope

    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {list_experiments()}"
        )
    reg = registry if registry is not None else MetricsRegistry()
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        with telemetry_scope(reg):
            with reg.span(f"profile.{exp_id}", scale=scale):
                if "scale" in inspect.signature(fn).parameters:
                    table = fn(scale=scale)
                else:
                    table = fn()

    os.makedirs(out_dir, exist_ok=True)
    base = os.path.join(out_dir, f"profile_{exp_id}_{scale}")
    meta = {"experiment": exp_id, "scale": scale}
    return ProfileResult(
        exp_id=exp_id,
        scale=scale,
        table=table,
        registry=reg,
        json_path=write_metrics_json(reg, base + ".json", meta=meta),
        trace_path=write_chrome_trace(reg, base + ".trace.json"),
        csv_path=write_metrics_csv(reg, base + ".csv"),
    )


def breakdown_rows(registry: MetricsRegistry) -> List[List]:
    """Per-stage rows: ``[span, clock, count, total_s, share %]``.

    Share is within the span's clock, over the leaf stage spans (the
    all-enclosing ``profile.*`` span is excluded from the denominator).
    """
    rows: List[List] = []
    for clock in ("wall", "sim"):
        totals = registry.span_totals(clock)
        stage_total = sum(
            tot for name, (_, tot) in totals.items()
            if not name.startswith(("profile.", "engine.job", "sim."))
        )
        for name in sorted(totals):
            n, tot = totals[name]
            share = 100.0 * tot / stage_total if stage_total > 0 else 0.0
            in_denominator = not name.startswith(
                ("profile.", "engine.job", "sim.")
            )
            rows.append([
                name, clock, n, round(tot, 6),
                round(share, 1) if in_denominator else "-",
            ])
    return rows


def breakdown_lines(registry: MetricsRegistry) -> List[str]:
    """Human-readable per-stage breakdown + key counters."""
    lines = ["-- span breakdown (per clock) --"]
    for name, clock, n, tot, share in breakdown_rows(registry):
        pct = f"{share:5.1f}%" if share != "-" else "     -"
        lines.append(f"  {name:<28s} [{clock}] n={n:<5d} {tot:>10.4f}s {pct}")
    counters = {k: c.value for k, c in registry.counters.items()}
    shown = [k for k in KEY_COUNTERS if k in counters]
    if shown:
        lines.append("-- key counters --")
        for k in shown:
            lines.append(f"  {k:<28s} {counters[k]}")
    hists = registry.histograms
    if hists:
        lines.append("-- histograms --")
        for k in sorted(hists):
            if "{" in k:               # labelled siblings stay in the JSON
                continue
            s = hists[k].summary()
            if s["count"]:
                lines.append(
                    f"  {k:<28s} n={s['count']} mean={s['mean']:.4g} "
                    f"p50={s['p50']:.4g} p99={s['p99']:.4g}"
                )
    return lines
