"""Telemetry exporters: JSON metrics dumps, CSV, Chrome trace_event.

Three formats cover the three consumers:

- :func:`write_metrics_json` — the machine-readable dump a perf
  trajectory or CI artifact wants (counters/gauges/histogram summaries
  plus per-name span totals).
- :func:`write_metrics_csv` — one flat ``metric,kind,field,value``
  table for spreadsheet triage.
- :func:`write_chrome_trace` — Chrome ``trace_event`` JSON loadable in
  Perfetto / ``chrome://tracing``.  Wall-clock spans and simulated-time
  spans are emitted as two separate trace processes so the two
  timelines never interleave (one simulated second renders as one
  trace second).

:func:`load_chrome_trace` reads a trace file back into
:class:`~repro.telemetry.registry.SpanRecord`-shaped dicts for the
round-trip tests.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "chrome_trace_dict",
    "load_chrome_trace",
    "metrics_csv_lines",
    "metrics_dict",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]

SCHEMA = "repro.telemetry/v1"

#: Trace-process ids: wall-clock spans vs simulated-time spans.
WALL_PID = 1
SIM_PID = 2
_PID_OF = {"wall": WALL_PID, "sim": SIM_PID}


# -- JSON metrics dump -------------------------------------------------


def metrics_dict(registry: MetricsRegistry,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The full JSON-dump payload for one registry."""
    out: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_at": registry.created_at,
        "exported_at": time.time(),
        "meta": dict(meta or {}),
    }
    out.update(registry.snapshot())
    return out


def write_metrics_json(registry: MetricsRegistry, path: str,
                       meta: Optional[Dict[str, Any]] = None) -> str:
    with open(path, "w") as fh:
        json.dump(metrics_dict(registry, meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- CSV ---------------------------------------------------------------


def metrics_csv_lines(registry: MetricsRegistry) -> List[str]:
    """``metric,kind,field,value`` rows for every metric."""
    lines = ["metric,kind,field,value"]

    def q(name: str) -> str:
        return f'"{name}"' if "," in name else name

    snap = registry.snapshot()
    for name, value in snap["counters"].items():
        lines.append(f"{q(name)},counter,value,{value}")
    for name, value in snap["gauges"].items():
        lines.append(f"{q(name)},gauge,value,{value!r}")
    for name, summary in snap["histograms"].items():
        for field in sorted(summary):
            lines.append(f"{q(name)},histogram,{field},{summary[field]!r}")
    for clock in ("wall", "sim"):
        for name, agg in snap["spans"][clock].items():
            lines.append(f"{q(name)},span.{clock},count,{agg['count']}")
            lines.append(f"{q(name)},span.{clock},total_s,{agg['total_s']!r}")
    return lines


def write_metrics_csv(registry: MetricsRegistry, path: str) -> str:
    with open(path, "w") as fh:
        fh.write("\n".join(metrics_csv_lines(registry)) + "\n")
    return path


# -- Chrome trace_event ------------------------------------------------


def chrome_trace_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON-object format for the registry.

    Spans become complete ('X') events, probes instant ('i') events;
    timestamps are microseconds.  Tracks (span ``track``, default the
    span name's first two segments) map to trace thread ids.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": WALL_PID, "tid": 0, "name": "process_name",
         "args": {"name": "wall-clock"}},
        {"ph": "M", "pid": SIM_PID, "tid": 0, "name": "process_name",
         "args": {"name": "simulated-time"}},
    ]
    tids: Dict[tuple, int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len([k for k in tids if k[0] == pid]) + 1
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            })
        return tid

    def default_track(name: str) -> str:
        return ".".join(name.split(".")[:2])

    for s in registry.spans:
        pid = _PID_OF[s.clock]
        events.append({
            "name": s.name,
            "cat": s.clock,
            "ph": "X",
            "ts": round(s.start * 1e6, 3),
            "dur": round(max(s.duration * 1e6, 1e-3), 3),
            "pid": pid,
            "tid": tid_for(pid, s.track or default_track(s.name)),
            "args": dict(s.args),
        })
    for p in registry.probes:
        pid = _PID_OF[p.clock]
        args = dict(p.args)
        if p.value is not None:
            args["value"] = p.value
        events.append({
            "name": p.name,
            "cat": p.clock,
            "ph": "i",
            "s": "t",
            "ts": round(p.at * 1e6, 3),
            "pid": pid,
            "tid": tid_for(pid, p.args.get("track", default_track(p.name))),
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA, "created_at": registry.created_at},
    }


def write_chrome_trace(registry: MetricsRegistry, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace_dict(registry), fh)
        fh.write("\n")
    return path


def load_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Span/probe events of a trace file, back in registry units.

    Returns dicts with ``name``, ``clock``, ``start``/``at`` and
    ``duration`` in seconds, plus ``args`` — the inverse of
    :func:`chrome_trace_dict` up to timestamp rounding (0.001 us).
    """
    with open(path) as fh:
        data = json.load(fh)
    pid_clock = {WALL_PID: "wall", SIM_PID: "sim"}
    out = []
    for ev in data["traceEvents"]:
        if ev.get("ph") == "X":
            out.append({
                "name": ev["name"],
                "clock": pid_clock.get(ev["pid"], "wall"),
                "start": ev["ts"] / 1e6,
                "duration": ev["dur"] / 1e6,
                "args": ev.get("args", {}),
            })
        elif ev.get("ph") == "i":
            out.append({
                "name": ev["name"],
                "clock": pid_clock.get(ev["pid"], "wall"),
                "at": ev["ts"] / 1e6,
                "args": ev.get("args", {}),
            })
    return out
