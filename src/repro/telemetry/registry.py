"""Process-wide metrics registry: counters, gauges, histograms, spans.

Telemetry is **disabled by default** and the instrumentation sites
scattered through the simulators are written so the disabled path costs
one module-global ``None`` check (no allocation, no branching inside
hot loops beyond the guard).  Enabling telemetry installs a
:class:`MetricsRegistry` as the process-wide active registry; every
instrumented component then records into it:

- **Counters** — monotonically increasing integers under stable dotted
  names (``cluster.filter.drops``, ``pcache.hits``).  Optional labels
  additionally increment a labelled sibling (``pcache.hits{matrix=arabic}``)
  so per-matrix attribution never changes the base name.
- **Gauges** — last-write-wins scalars (``engine.pool.workers``).
- **Histograms** — sample collections with percentile summaries
  (``concat.prs_per_packet``, ``dessim.pr.latency``).
- **Spans** — named intervals on either the *wall* clock (stage timings
  in the trace model, engine jobs) or the *sim* clock (simulated-time
  intervals in the DES), exportable as Chrome ``trace_event`` files
  (:mod:`repro.telemetry.export`).
- **Probes** — instant point events carrying a value.

Nothing in this module imports numpy or any simulator code: importing
telemetry must stay cheap because every instrumented module imports it.
"""

from __future__ import annotations

import math
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeRecord",
    "SpanRecord",
    "active",
    "add_span",
    "count",
    "disable",
    "enable",
    "enabled",
    "observe",
    "probe",
    "set_gauge",
    "span",
    "telemetry_scope",
]

#: Stable dotted metric names: ``segment(.segment)*`` of word characters.
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+(\.[A-Za-z0-9_-]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}; expected dotted segments of "
            "[A-Za-z0-9_-]"
        )
    return name


def _labelled(name: str, labels: Dict[str, Any]) -> str:
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += int(n)


@dataclass
class Gauge:
    """A last-write-wins scalar metric."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A sample collection with percentile summaries."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return math.fsum(self.samples)

    @property
    def mean(self) -> float:
        return self.sum / len(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        s = sorted(self.samples)
        pos = (len(s) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.samples),
            "max": max(self.samples),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class SpanRecord:
    """One named interval on the wall or the simulated clock.

    ``start`` and ``duration`` are in seconds of the span's clock
    (wall-clock starts are relative to the registry's epoch).
    """

    name: str
    start: float
    duration: float
    clock: str = "wall"               # "wall" | "sim"
    track: str = ""                   # groups spans onto one trace row
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ProbeRecord:
    """One instant point event (Chrome-trace 'i' phase)."""

    name: str
    at: float
    clock: str = "wall"
    value: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)


class _SpanContext:
    """Context manager recording one wall-clock span on exit."""

    __slots__ = ("_registry", "_name", "_track", "_args", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str, track: str,
                 args: Dict[str, Any]):
        self._registry = registry
        self._name = name
        self._track = track
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        self._registry.add_span(
            self._name,
            start=self._t0 - self._registry.epoch,
            duration=t1 - self._t0,
            clock="wall",
            track=self._track,
            **self._args,
        )
        return False


class _NullSpan:
    """The shared no-op context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """All metrics of one profiled run.

    Metric accessors are get-or-create: the first ``counter("a.b")``
    defines the counter, later calls return the same object.
    """

    def __init__(self):
        self.epoch = time.perf_counter()
        self.created_at = time.time()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[SpanRecord] = []
        self.probes: List[ProbeRecord] = []

    # -- metric accessors ----------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _labelled(_check_name(name), labels) if labels else _check_name(name)
        c = self.counters.get(key)
        if c is None:
            c = self.counters[key] = Counter(key)
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = _labelled(_check_name(name), labels) if labels else _check_name(name)
        g = self.gauges.get(key)
        if g is None:
            g = self.gauges[key] = Gauge(key)
        return g

    def histogram(self, name: str, **labels) -> Histogram:
        key = _labelled(_check_name(name), labels) if labels else _check_name(name)
        h = self.histograms.get(key)
        if h is None:
            h = self.histograms[key] = Histogram(key)
        return h

    # -- recording shorthands ------------------------------------------

    def count(self, name: str, n: int = 1, **labels) -> None:
        """Increment ``name`` (and its labelled sibling, if labelled)."""
        self.counter(name).inc(n)
        if labels:
            self.counter(name, **labels).inc(n)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name).set(value)
        if labels:
            self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name).observe(value)
        if labels:
            self.histogram(name, **labels).observe(value)

    def span(self, name: str, *, track: str = "", **args) -> _SpanContext:
        """Wall-clock span context manager."""
        return _SpanContext(self, _check_name(name), track, args)

    def add_span(self, name: str, start: float, duration: float,
                 clock: str = "wall", track: str = "", **args) -> SpanRecord:
        """Record an explicit span — the sim-clock entry point."""
        if clock not in ("wall", "sim"):
            raise ValueError(f"unknown span clock {clock!r}")
        rec = SpanRecord(_check_name(name), float(start),
                         max(float(duration), 0.0), clock, track, args)
        self.spans.append(rec)
        return rec

    def probe(self, name: str, value: Optional[float] = None,
              clock: str = "wall", at: Optional[float] = None,
              **args) -> ProbeRecord:
        """Record an instant event; numeric values also feed the
        same-named histogram."""
        if at is None:
            at = time.perf_counter() - self.epoch if clock == "wall" else 0.0
        rec = ProbeRecord(_check_name(name), float(at), clock,
                          None if value is None else float(value), args)
        self.probes.append(rec)
        if value is not None:
            self.observe(name, value)
        return rec

    # -- aggregation ---------------------------------------------------

    def span_totals(
        self, clock: Optional[str] = None
    ) -> Dict[str, Tuple[int, float]]:
        """``name -> (count, total_duration)`` over recorded spans."""
        out: Dict[str, Tuple[int, float]] = {}
        for s in self.spans:
            if clock is not None and s.clock != clock:
                continue
            n, tot = out.get(s.name, (0, 0.0))
            out[s.name] = (n + 1, tot + s.duration)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every metric (the JSON dump's core)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self.histograms.items())
            },
            "spans": {
                clock: {
                    name: {"count": n, "total_s": tot}
                    for name, (n, tot) in sorted(
                        self.span_totals(clock).items()
                    )
                }
                for clock in ("wall", "sim")
            },
        }


# -- the process-wide active registry ----------------------------------

_active: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when telemetry is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Deactivate telemetry, returning the registry that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def telemetry_scope(registry: Optional[MetricsRegistry] = None):
    """Temporarily enable telemetry, restoring the previous state."""
    global _active
    previous = _active
    reg = enable(registry)
    try:
        yield reg
    finally:
        _active = previous


# -- zero-overhead module-level recording API --------------------------
#
# Instrumentation sites call these; each is one global read + None
# check when telemetry is disabled.


def count(name: str, n: int = 1, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.count(name, n, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.observe(name, value, **labels)


def span(name: str, *, track: str = "", **args):
    reg = _active
    if reg is None:
        return _NULL_SPAN
    return reg.span(name, track=track, **args)


def add_span(name: str, start: float, duration: float,
             clock: str = "sim", track: str = "", **args) -> None:
    reg = _active
    if reg is not None:
        reg.add_span(name, start, duration, clock, track, **args)


def probe(name: str, value: Optional[float] = None, clock: str = "wall",
          at: Optional[float] = None, **args) -> None:
    reg = _active
    if reg is not None:
        reg.probe(name, value, clock, at, **args)
