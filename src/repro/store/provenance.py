"""Provenance captured on every store write.

A result row (or artifact) without provenance is unauditable: two
machines sweeping the same grid must be able to tell *which code*
produced a row before trusting it.  Every write therefore stamps:

- ``code_salt`` — the simulator-semantics version
  (:data:`repro.parallel.jobs.CODE_SALT`), the same salt already folded
  into every job digest;
- ``kernel_tier`` — the active ``REPRO_KERNELS`` backend (``fast`` /
  ``reference`` / ``pool``; bit-identical by the golden suite, recorded
  anyway so an equivalence regression is attributable);
- ``git_sha`` — the commit of the working tree, resolved once per
  process (``$REPRO_GIT_SHA`` overrides for detached deployments);
- ``schema_version`` — the store schema the row was written under;
- ``worker`` — ``host:pid`` of the writing process.
"""

from __future__ import annotations

import os
import socket
import subprocess
from functools import lru_cache
from pathlib import Path

__all__ = ["git_sha", "kernel_tier", "worker_id", "provenance"]

#: Override for environments without a git checkout (containers, CI
#: artifact replays).
ENV_GIT_SHA = "REPRO_GIT_SHA"


@lru_cache(maxsize=1)
def git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a checkout."""
    env = os.environ.get(ENV_GIT_SHA)
    if env:
        return env
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def kernel_tier() -> str:
    """The active ``REPRO_KERNELS`` backend name."""
    from repro.core.kernels import get_backend

    return get_backend()


@lru_cache(maxsize=1)
def worker_id() -> str:
    """``host:pid`` — note the pid is resolved per call-site process
    (the lru_cache does not survive a fork's first call in the child
    because forked children re-execute on first miss only; workers
    that fork after caching inherit the parent's id, which is the
    submitting process and therefore still the right attribution)."""
    try:
        host = socket.gethostname()
    except OSError:
        host = "localhost"
    return f"{host}:{os.getpid()}"


def provenance() -> dict:
    """The full provenance stamp for one store write."""
    from repro.parallel.jobs import CODE_SALT
    from repro.store.migrations import SCHEMA_VERSION

    return {
        "code_salt": CODE_SALT,
        "kernel_tier": kernel_tier(),
        "git_sha": git_sha(),
        "schema_version": SCHEMA_VERSION,
        "worker": worker_id(),
    }
