"""The result/artifact store: provenance-stamped rows over a backend.

One :class:`Store` wraps one backend connection factory
(:mod:`repro.store.backend`) and exposes the three tables the
migrations define:

- ``put_result``/``get_result`` — the shared cache tier behind
  :class:`~repro.parallel.cache.ResultCache`.  ``CommResult`` payloads
  travel through the service's bit-exact ``__nd__`` JSON codec
  (:func:`repro.service.protocol.encode_result`), so a result read
  back from the store compares bitwise equal to the filesystem tier
  and to direct simulation; anything else falls back to pickle.
  Writes are first-writer-wins (``INSERT OR IGNORE``), so two
  processes racing the same digest converge to a single provenance
  row.
- ``put_artifact``/``get_artifact``/``latest_artifacts`` —
  content-addressed blobs (bench snapshots, reports) deduped by
  SHA-256.
- ``record_run``/``history`` — the append-only run ledger: one row per
  engine answer with source attribution, queryable by experiment /
  scheme / matrix / scale / source / time window.

Every operation bumps a ``store.*`` telemetry counter (no-ops when
telemetry is disabled, like every other instrumented subsystem).
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.store.backend import (
    ENV_STORE_DSN,
    StoreError,
    backend_for_dsn,
    parse_dsn,
)
from repro.store.migrations import (
    SCHEMA_VERSION,
    applied_versions,
    run_migrations,
)

__all__ = ["Store", "StoredResult", "open_store", "store_from_env"]

#: Result payload formats.
_FMT_COMM = "comm-json-v1"     # CommResult via the service __nd__ codec
_FMT_PICKLE = "pickle-v1"      # anything else


class StoredResult:
    """One row read back from the ``results`` table."""

    __slots__ = ("digest", "result", "meta", "elapsed", "created",
                 "provenance")

    def __init__(self, digest, result, meta, elapsed, created, provenance):
        self.digest = digest
        self.result = result
        self.meta = meta
        self.elapsed = elapsed
        self.created = created
        self.provenance = provenance


def _encode_payload(result: Any):
    """``(fmt, bytes)`` for a result object.

    The import is deliberately lazy: the store package stays importable
    without numpy for pure-ledger uses (CLI ``store history`` against a
    copied database, for instance).
    """
    from repro.results import CommResult
    from repro.service import protocol as proto

    if isinstance(result, CommResult):
        return _FMT_COMM, proto.dumps(proto.encode_result(result))
    return _FMT_PICKLE, pickle.dumps(result,
                                     protocol=pickle.HIGHEST_PROTOCOL)


def _decode_payload(fmt: str, blob: bytes) -> Any:
    if fmt == _FMT_COMM:
        from repro.service import protocol as proto

        return proto.decode_result(proto.loads(bytes(blob)))
    if fmt == _FMT_PICKLE:
        return pickle.loads(bytes(blob))
    raise StoreError(f"unknown result payload format {fmt!r}")


def _meta_json(meta: Optional[dict]) -> str:
    """Canonical JSON for a meta dict (numpy scalars degrade cleanly)."""
    from repro.service import protocol as proto

    return proto.dumps(proto.encode_value(dict(meta or {}))).decode("utf-8")


def _meta_load(raw: str) -> dict:
    from repro.service import protocol as proto

    return proto.decode_value(json.loads(raw))


class Store:
    """Results + artifacts + run ledger over one backend."""

    def __init__(self, backend, *, dsn: str = ""):
        self.backend = backend
        self.dsn = dsn

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def open(cls, dsn: str, *, migrate: bool = True) -> "Store":
        """Open (and by default migrate) the store a DSN names."""
        store = cls(backend_for_dsn(dsn), dsn=parse_dsn(dsn).raw)
        if migrate:
            store.migrate()
        return store

    def migrate(self) -> List[int]:
        """Apply pending migrations; ``[]`` when already up to date."""
        applied = run_migrations(self.backend)
        if applied:
            telemetry.count("store.migrations.applied", n=len(applied))
        return applied

    def schema_version(self) -> int:
        versions = applied_versions(self.backend)
        return max(versions) if versions else 0

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- results -------------------------------------------------------

    def put_result(self, digest: str, result: Any, *,
                   meta: Optional[dict] = None,
                   elapsed: float = 0.0) -> bool:
        """Store one result with full provenance; ``True`` if this call
        inserted the row (``False``: another writer got there first —
        deterministic content, so losing the race loses nothing)."""
        from repro.store.provenance import provenance

        prov = provenance()
        fmt, payload = _encode_payload(result)
        meta = dict(meta or {})
        with self.backend.transaction() as cur:
            cur.execute(
                self.backend.sql(
                    "INSERT {OR_IGNORE} INTO results"
                    " (digest, fmt, payload, meta_json, elapsed, created,"
                    "  code_salt, faults_digest, kernel_tier, git_sha,"
                    "  schema_version)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " {ON_CONFLICT}"),
                (digest, fmt, payload, _meta_json(meta), float(elapsed),
                 time.time(), prov["code_salt"], meta.get("faults_digest"),
                 prov["kernel_tier"], prov["git_sha"],
                 prov["schema_version"]))
            inserted = cur.rowcount > 0
        telemetry.count("store.results.puts")
        if not inserted:
            telemetry.count("store.results.races")
        return inserted

    def get_result(self, digest: str) -> Optional[StoredResult]:
        with self.backend.reading() as cur:
            cur.execute(
                self.backend.sql(
                    "SELECT fmt, payload, meta_json, elapsed, created,"
                    " code_salt, faults_digest, kernel_tier, git_sha,"
                    " schema_version FROM results WHERE digest = ?"),
                (digest,))
            row = cur.fetchone()
        telemetry.count("store.results.gets")
        if row is None:
            telemetry.count("store.results.misses")
            return None
        telemetry.count("store.results.hits")
        return StoredResult(
            digest=digest,
            result=_decode_payload(row[0], row[1]),
            meta=_meta_load(row[2]),
            elapsed=row[3],
            created=row[4],
            provenance={
                "code_salt": row[5], "faults_digest": row[6],
                "kernel_tier": row[7], "git_sha": row[8],
                "schema_version": row[9],
            },
        )

    # -- artifacts -----------------------------------------------------

    def put_artifact(self, content: bytes, *, kind: str, name: str,
                     meta: Optional[dict] = None) -> str:
        """Store a blob content-addressed; returns its sha256 key.
        Identical content dedupes to one row regardless of name."""
        from repro.store.provenance import provenance

        if isinstance(content, str):
            content = content.encode("utf-8")
        sha = hashlib.sha256(content).hexdigest()
        prov = provenance()
        with self.backend.transaction() as cur:
            cur.execute(
                self.backend.sql(
                    "INSERT {OR_IGNORE} INTO artifacts"
                    " (sha256, kind, name, content, nbytes, created,"
                    "  meta_json, git_sha, code_salt)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " {ON_CONFLICT}"),
                (sha, kind, name, content, len(content), time.time(),
                 _meta_json(meta), prov["git_sha"], prov["code_salt"]))
            inserted = cur.rowcount > 0
        telemetry.count("store.artifacts.puts")
        if not inserted:
            telemetry.count("store.artifacts.dedupes")
        return sha

    def get_artifact(self, sha256: str) -> Optional[Dict[str, Any]]:
        with self.backend.reading() as cur:
            cur.execute(
                self.backend.sql(
                    "SELECT sha256, kind, name, content, nbytes, created,"
                    " meta_json, git_sha, code_salt FROM artifacts"
                    " WHERE sha256 = ?"),
                (sha256,))
            row = cur.fetchone()
        return None if row is None else self._artifact_row(row)

    def latest_artifacts(self, kind: str,
                         limit: int = 2) -> List[Dict[str, Any]]:
        """Newest-first artifacts of one kind (content included)."""
        with self.backend.reading() as cur:
            cur.execute(
                self.backend.sql(
                    "SELECT sha256, kind, name, content, nbytes, created,"
                    " meta_json, git_sha, code_salt FROM artifacts"
                    " WHERE kind = ? ORDER BY created DESC, sha256"
                    " LIMIT ?"),
                (kind, int(limit)))
            rows = cur.fetchall()
        return [self._artifact_row(r) for r in rows]

    @staticmethod
    def _artifact_row(row) -> Dict[str, Any]:
        return {
            "sha256": row[0], "kind": row[1], "name": row[2],
            "content": bytes(row[3]), "nbytes": row[4], "created": row[5],
            "meta": _meta_load(row[6]), "git_sha": row[7],
            "code_salt": row[8],
        }

    # -- run ledger ----------------------------------------------------

    def record_run(self, digest: str, *, source: str, elapsed: float = 0.0,
                   worker: Optional[str] = None,
                   meta: Optional[dict] = None,
                   experiment: Optional[str] = None) -> None:
        """Append one run-ledger row (never updates, never deletes)."""
        from repro.store.provenance import provenance

        prov = provenance()
        meta = dict(meta or {})
        with self.backend.transaction() as cur:
            cur.execute(
                self.backend.sql(
                    "INSERT INTO ledger"
                    " (ts, digest, source, elapsed, worker, experiment,"
                    "  scheme, matrix, k, scale, seed, git_sha, code_salt)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"),
                (time.time(), digest, source, float(elapsed),
                 worker or prov["worker"], experiment,
                 meta.get("scheme"), meta.get("matrix"),
                 meta.get("k"), meta.get("scale_name"), meta.get("seed"),
                 prov["git_sha"], prov["code_salt"]))
        telemetry.count("store.ledger.rows", source=source)

    _LEDGER_COLS = ("id", "ts", "digest", "source", "elapsed", "worker",
                    "experiment", "scheme", "matrix", "k", "scale", "seed",
                    "git_sha", "code_salt")

    def history(self, *, experiment: Optional[str] = None,
                scheme: Optional[str] = None,
                matrix: Optional[str] = None,
                scale: Optional[str] = None,
                source: Optional[str] = None,
                digest: Optional[str] = None,
                since: Optional[float] = None,
                limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Ledger rows, newest first, filtered."""
        clauses, params = [], []
        for col, val in (("experiment", experiment), ("scheme", scheme),
                         ("matrix", matrix), ("scale", scale),
                         ("source", source), ("digest", digest)):
            if val is not None:
                clauses.append(f"{col} = ?")
                params.append(val)
        if since is not None:
            clauses.append("ts >= ?")
            params.append(float(since))
        sql = ("SELECT " + ", ".join(self._LEDGER_COLS) + " FROM ledger")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY ts DESC, id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self.backend.reading() as cur:
            cur.execute(self.backend.sql(sql), tuple(params))
            rows = cur.fetchall()
        return [dict(zip(self._LEDGER_COLS, row)) for row in rows]

    # -- maintenance / introspection -----------------------------------

    def counts(self) -> Dict[str, int]:
        out = {}
        with self.backend.reading() as cur:
            for table in ("results", "artifacts", "ledger"):
                cur.execute(f"SELECT COUNT(*) FROM {table}")
                out[table] = cur.fetchone()[0]
        return out

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary: backend, schema, row counts."""
        info = dict(self.backend.describe())
        info["dsn"] = self.dsn
        info["schema_version"] = self.schema_version()
        info["latest_schema_version"] = SCHEMA_VERSION
        try:
            info.update(self.counts())
        except Exception:
            # Unmigrated database: counts are simply absent.
            info.update({"results": 0, "artifacts": 0, "ledger": 0})
        return info

    def gc(self, *, older_than_days: float = 30.0,
           include_ledger: bool = False,
           dry_run: bool = False) -> Dict[str, int]:
        """Reclaim result rows and artifacts older than the cutoff.

        The ledger is append-only and kept by default; pass
        ``include_ledger=True`` to prune its old rows too (an explicit
        audit-trail decision, never implicit)."""
        cutoff = time.time() - older_than_days * 86400.0
        removed: Dict[str, int] = {}
        tables = ["results", "artifacts"] + (
            ["ledger"] if include_ledger else [])
        for table in tables:
            col = "ts" if table == "ledger" else "created"
            with self.backend.reading() as cur:
                cur.execute(
                    self.backend.sql(
                        f"SELECT COUNT(*) FROM {table} WHERE {col} < ?"),
                    (cutoff,))
                removed[table] = cur.fetchone()[0]
            if not dry_run and removed[table]:
                with self.backend.transaction() as cur:
                    cur.execute(
                        self.backend.sql(
                            f"DELETE FROM {table} WHERE {col} < ?"),
                        (cutoff,))
        if not dry_run and any(removed.values()):
            self.backend.vacuum()
            telemetry.count("store.gc.removed", n=sum(removed.values()))
        return removed


def open_store(dsn: str, *, migrate: bool = True) -> Store:
    """Open the store a DSN names (module-level convenience)."""
    return Store.open(dsn, migrate=migrate)


def store_from_env(env: Optional[dict] = None) -> Optional[Store]:
    """The env-configured store, or ``None`` when ``REPRO_STORE_DSN``
    is unset — the zero-config default stays pure-filesystem."""
    import os

    dsn = (env or os.environ).get(ENV_STORE_DSN)
    if not dsn:
        return None
    return open_store(dsn)
