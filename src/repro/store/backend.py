"""Storage backends: DSN parsing + per-backend connection factories.

The store speaks to exactly one of two backends, selected by DSN:

- ``SQLiteBackend`` — the zero-config default.  ``sqlite:///path/to.db``
  (or a bare filesystem path) opens a WAL-mode database with a busy
  timeout, so several processes — service replicas, CLI tools, CI jobs
  — can share one store file safely.  ``sqlite:///:memory:`` keeps
  everything on a single shared connection (tests).
- ``PostgresBackend`` — DSN ``postgres://`` / ``postgresql://``.  The
  SQL templates the migration runner and :class:`~repro.store.Store`
  emit are written against a dialect shim (``{AUTOPK}``, ``{BLOB}``,
  ``{OR_IGNORE}``/``{ON_CONFLICT}``, placeholder style), so the same
  schema and queries render for either backend.  Connecting requires a
  ``psycopg`` module; the container does not ship one, so the backend
  *parses* and *renders* everywhere but raises
  :class:`StoreUnavailableError` at connect time when the driver is
  absent — the Postgres surface is an interface contract, not a baked
  dependency.

Both backends expose the same tiny surface: ``connect()`` (a DB-API
connection appropriate to the calling thread), ``sql()`` (dialect
rendering), and ``transaction()``.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ENV_STORE_DSN",
    "StoreError",
    "StoreUnavailableError",
    "ParsedDSN",
    "parse_dsn",
    "SQLiteBackend",
    "PostgresBackend",
    "backend_for_dsn",
]

#: Environment opt-in: set to a DSN to route the result cache, the run
#: ledger, and bench artifacts through a shared store.
ENV_STORE_DSN = "REPRO_STORE_DSN"

#: How long a writer waits on a locked SQLite database before erroring.
SQLITE_BUSY_TIMEOUT_MS = 10_000


class StoreError(RuntimeError):
    """Any store-layer failure the caller may want to degrade around."""


class StoreUnavailableError(StoreError):
    """The DSN names a backend whose driver is not installed."""


@dataclass(frozen=True)
class ParsedDSN:
    """A DSN broken into backend kind + backend-specific locator."""

    backend: str        # "sqlite" | "postgres"
    location: str       # filesystem path, ":memory:", or pg DSN
    raw: str

    @property
    def memory(self) -> bool:
        return self.backend == "sqlite" and self.location == ":memory:"


def parse_dsn(dsn: str) -> ParsedDSN:
    """Classify a DSN.

    Accepted spellings::

        sqlite:////abs/path.db      sqlite:///rel/path.db
        sqlite:///:memory:          :memory:
        /abs/path.db                rel/path.db      (bare paths)
        postgres://user@host/db     postgresql://...
    """
    if not dsn or not str(dsn).strip():
        raise StoreError("empty store DSN")
    dsn = str(dsn).strip()
    lowered = dsn.lower()
    if lowered.startswith(("postgres://", "postgresql://")):
        return ParsedDSN(backend="postgres", location=dsn, raw=dsn)
    if lowered.startswith("sqlite:"):
        rest = dsn.split(":", 1)[1].lstrip("/")
        # sqlite:////abs/x -> /abs/x ; sqlite:///x -> x (relative)
        if dsn.lower().startswith("sqlite:////"):
            rest = "/" + rest
        if rest in (":memory:", ""):
            return ParsedDSN(backend="sqlite", location=":memory:", raw=dsn)
        return ParsedDSN(backend="sqlite",
                         location=str(Path(rest).expanduser()), raw=dsn)
    if dsn == ":memory:":
        return ParsedDSN(backend="sqlite", location=":memory:", raw=dsn)
    if "://" in dsn:
        raise StoreError(f"unsupported store DSN scheme: {dsn!r}")
    return ParsedDSN(backend="sqlite",
                     location=str(Path(dsn).expanduser()), raw=dsn)


class SQLiteBackend:
    """WAL-mode SQLite with one connection per thread.

    File databases hand every thread its own connection (SQLite
    connections are not thread-safe under concurrent use) with WAL +
    busy-timeout pragmas, so independent processes sharing the store
    file serialize on the page level, not at the API.  ``:memory:``
    databases are per-connection in SQLite, so those fall back to one
    shared connection guarded by a lock.
    """

    name = "sqlite"
    placeholder = "?"

    _DIALECT = {
        "{AUTOPK}": "INTEGER PRIMARY KEY AUTOINCREMENT",
        "{BLOB}": "BLOB",
        "{OR_IGNORE}": "OR IGNORE",
        "{ON_CONFLICT}": "",
    }

    def __init__(self, location: str):
        self.location = location
        self._local = threading.local()
        self._memory = location == ":memory:"
        self._shared: sqlite3.Connection | None = None
        self._lock = threading.RLock()

    # -- connections ---------------------------------------------------

    def _new_conn(self) -> sqlite3.Connection:
        if not self._memory:
            Path(self.location).expanduser().parent.mkdir(
                parents=True, exist_ok=True)
        conn = sqlite3.connect(
            self.location,
            timeout=SQLITE_BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,            # autocommit; explicit BEGIN
            check_same_thread=False,
        )
        conn.row_factory = sqlite3.Row
        cur = conn.cursor()
        cur.execute(f"PRAGMA busy_timeout={SQLITE_BUSY_TIMEOUT_MS}")
        if not self._memory:
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
        cur.close()
        return conn

    def connect(self) -> sqlite3.Connection:
        if self._memory:
            with self._lock:
                if self._shared is None:
                    self._shared = self._new_conn()
                return self._shared
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._new_conn()
            self._local.conn = conn
        return conn

    @contextmanager
    def transaction(self):
        """One write transaction; serialized for shared connections."""
        conn = self.connect()
        with self._lock if self._memory else _null_lock():
            cur = conn.cursor()
            try:
                cur.execute("BEGIN IMMEDIATE")
                yield cur
                conn.commit()
            except BaseException:
                conn.rollback()
                raise
            finally:
                cur.close()

    @contextmanager
    def reading(self):
        """A read cursor (shared-connection databases still lock)."""
        conn = self.connect()
        with self._lock if self._memory else _null_lock():
            cur = conn.cursor()
            try:
                yield cur
            finally:
                cur.close()

    # -- dialect -------------------------------------------------------

    def sql(self, template: str) -> str:
        out = template
        for token, concrete in self._DIALECT.items():
            out = out.replace(token, concrete)
        return out

    def describe(self) -> dict:
        info = {"backend": self.name, "location": self.location}
        if not self._memory:
            try:
                info["size_bytes"] = os.path.getsize(self.location)
            except OSError:
                info["size_bytes"] = 0
        return info

    def close(self) -> None:
        with self._lock:
            if self._shared is not None:
                self._shared.close()
                self._shared = None
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def vacuum(self) -> None:
        if not self._memory:
            self.connect().execute("VACUUM")


@contextmanager
def _null_lock():
    yield


class PostgresBackend:
    """Postgres rendering + (driver-gated) connections.

    The dialect shim renders every template the store and the
    migration runner use, so the schema is provably expressible on
    Postgres; actually connecting needs a ``psycopg`` (v3) or
    ``psycopg2`` module at runtime, which this environment does not
    ship — :meth:`connect` degrades to a clear
    :class:`StoreUnavailableError` instead of an import crash.
    """

    name = "postgres"
    placeholder = "%s"

    _DIALECT = {
        "{AUTOPK}": "BIGSERIAL PRIMARY KEY",
        "{BLOB}": "BYTEA",
        "{OR_IGNORE}": "",
        "{ON_CONFLICT}": "ON CONFLICT DO NOTHING",
    }

    def __init__(self, location: str):
        self.location = location
        self._lock = threading.RLock()
        self._local = threading.local()

    @staticmethod
    def _driver():
        for mod in ("psycopg", "psycopg2"):
            try:
                return __import__(mod)
            except ImportError:
                continue
        return None

    def connect(self):
        driver = self._driver()
        if driver is None:
            raise StoreUnavailableError(
                "postgres DSN given but neither psycopg nor psycopg2 is "
                "installed; install one or use a sqlite:// DSN")
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = driver.connect(self.location)
            self._local.conn = conn
        return conn

    @contextmanager
    def transaction(self):
        conn = self.connect()
        cur = conn.cursor()
        try:
            yield cur
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            cur.close()

    @contextmanager
    def reading(self):
        cur = self.connect().cursor()
        try:
            yield cur
        finally:
            cur.close()

    def sql(self, template: str) -> str:
        out = template
        for token, concrete in self._DIALECT.items():
            out = out.replace(token, concrete)
        out = out.replace("?", self.placeholder)
        # Collapse doubled spaces left by empty token substitutions.
        return " ".join(out.split())

    def describe(self) -> dict:
        return {"backend": self.name, "location": self.location}

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def vacuum(self) -> None:  # pragma: no cover - needs a live server
        pass


def backend_for_dsn(dsn: str):
    """The connection factory for a DSN (connecting may still be gated
    on the backend's driver — see :class:`PostgresBackend`)."""
    parsed = parse_dsn(dsn)
    if parsed.backend == "postgres":
        return PostgresBackend(parsed.location)
    return SQLiteBackend(parsed.location)
