"""Idempotent, backend-aware schema migrations.

Every schema change is one :class:`Migration` — an ordered version
number plus the DDL statements written against the dialect shim
(``{AUTOPK}``, ``{BLOB}``; see :mod:`repro.store.backend`).  The
runner records applied versions in ``schema_migrations`` and applies
each missing migration inside a transaction, so:

- running ``migrate`` twice is a provable no-op (the second call
  returns an empty list),
- two processes racing ``migrate`` on one database serialize on the
  write transaction and converge to the same schema,
- a failed migration rolls back whole, leaving the version unrecorded.

Tables (schema v1):

``results``
    One row per :class:`~repro.parallel.jobs.SimJob` digest — the
    shared tier behind :class:`~repro.parallel.cache.ResultCache`.
    Every write carries full provenance: the job digest, ``CODE_SALT``,
    the faults-plan digest, the active ``REPRO_KERNELS`` tier, the git
    sha, the store schema version, and creation timestamps.

``artifacts``
    Content-addressed blobs (bench snapshots, reports, telemetry
    dumps), keyed by the SHA-256 of their content so identical
    artifacts dedupe across machines.

``ledger``
    Append-only: one row per engine answer, with source attribution
    (``memo`` / ``cache`` / ``inflight`` / ``executed`` /
    ``coalesced``), elapsed seconds, and the worker identity — the
    queryable history behind ``netsparse store history``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Migration", "MIGRATIONS", "SCHEMA_VERSION", "run_migrations",
           "applied_versions"]


@dataclass(frozen=True)
class Migration:
    version: int
    name: str
    statements: Sequence[str]


MIGRATIONS: List[Migration] = [
    Migration(1, "base-results-artifacts-ledger", (
        """
        CREATE TABLE IF NOT EXISTS results (
            digest          TEXT PRIMARY KEY,
            fmt             TEXT NOT NULL,
            payload         {BLOB} NOT NULL,
            meta_json       TEXT NOT NULL,
            elapsed         REAL NOT NULL,
            created         REAL NOT NULL,
            code_salt       TEXT NOT NULL,
            faults_digest   TEXT,
            kernel_tier     TEXT NOT NULL,
            git_sha         TEXT NOT NULL,
            schema_version  INTEGER NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS artifacts (
            sha256          TEXT PRIMARY KEY,
            kind            TEXT NOT NULL,
            name            TEXT NOT NULL,
            content         {BLOB} NOT NULL,
            nbytes          INTEGER NOT NULL,
            created         REAL NOT NULL,
            meta_json       TEXT NOT NULL,
            git_sha         TEXT NOT NULL,
            code_salt       TEXT NOT NULL
        )
        """,
        "CREATE INDEX IF NOT EXISTS ix_artifacts_kind_created"
        " ON artifacts (kind, created)",
        """
        CREATE TABLE IF NOT EXISTS ledger (
            id              {AUTOPK},
            ts              REAL NOT NULL,
            digest          TEXT NOT NULL,
            source          TEXT NOT NULL,
            elapsed         REAL NOT NULL,
            worker          TEXT NOT NULL,
            experiment      TEXT,
            scheme          TEXT,
            matrix          TEXT,
            k               INTEGER,
            scale           TEXT,
            seed            INTEGER,
            git_sha         TEXT NOT NULL,
            code_salt       TEXT NOT NULL
        )
        """,
        "CREATE INDEX IF NOT EXISTS ix_ledger_ts ON ledger (ts)",
        "CREATE INDEX IF NOT EXISTS ix_ledger_digest ON ledger (digest)",
        "CREATE INDEX IF NOT EXISTS ix_ledger_source ON ledger (source)",
    )),
]

#: The schema version a fully migrated store reports — stamped into
#: every result row's provenance.
SCHEMA_VERSION = max(m.version for m in MIGRATIONS)

_MIGRATIONS_TABLE = """
CREATE TABLE IF NOT EXISTS schema_migrations (
    version     INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    applied_at  REAL NOT NULL
)
"""


def applied_versions(backend) -> List[int]:
    """Versions already recorded in ``schema_migrations`` (sorted)."""
    with backend.transaction() as cur:
        cur.execute(backend.sql(_MIGRATIONS_TABLE))
    with backend.reading() as cur:
        cur.execute("SELECT version FROM schema_migrations ORDER BY version")
        return [row[0] for row in cur.fetchall()]


def run_migrations(backend) -> List[int]:
    """Apply every pending migration; returns the versions applied.

    Idempotent by construction: a second call finds every version
    recorded and returns ``[]`` without touching the schema.
    """
    done = set(applied_versions(backend))
    applied: List[int] = []
    for mig in sorted(MIGRATIONS, key=lambda m: m.version):
        if mig.version in done:
            continue
        with backend.transaction() as cur:
            # Re-check inside the write transaction: another process
            # may have applied this version between our read and now.
            cur.execute(
                backend.sql("SELECT 1 FROM schema_migrations"
                            " WHERE version = ?"),
                (mig.version,))
            if cur.fetchone() is not None:
                continue
            for stmt in mig.statements:
                cur.execute(backend.sql(stmt))
            cur.execute(
                backend.sql("INSERT INTO schema_migrations"
                            " (version, name, applied_at) VALUES (?, ?, ?)"),
                (mig.version, mig.name, time.time()))
        applied.append(mig.version)
    return applied
