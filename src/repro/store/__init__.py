"""Pluggable result/artifact store with provenance and a run ledger.

The filesystem :class:`~repro.parallel.cache.ResultCache` answers one
process on one machine; this package is the shared tier behind it —
a database-backed store (SQLite by default, DSN-selectable and
Postgres-ready) holding:

- **results**: one provenance-stamped row per ``SimJob`` digest (job
  digest, ``CODE_SALT``, faults-plan digest, kernel tier, git sha,
  schema version, timestamps), with bit-identical ``CommResult``
  round-trips through the service ``__nd__`` codec;
- **artifacts**: content-addressed blobs (bench snapshots, reports)
  deduped by SHA-256;
- **ledger**: an append-only record of every engine answer with
  source attribution — the queryable history behind
  ``netsparse store history``.

Opt in by setting ``REPRO_STORE_DSN``::

    REPRO_STORE_DSN=sqlite:////var/lib/netsparse/store.sqlite3 \\
        netsparse serve --jobs 4

Two service replicas pointed at one store coalesce duplicate
submissions across processes: the first executes and writes the row,
the second answers from the store.  Migrations are idempotent
(``netsparse store migrate`` twice is a no-op) and run automatically
on open.
"""

from repro.store.backend import (
    ENV_STORE_DSN,
    ParsedDSN,
    PostgresBackend,
    SQLiteBackend,
    StoreError,
    StoreUnavailableError,
    backend_for_dsn,
    parse_dsn,
)
from repro.store.migrations import MIGRATIONS, SCHEMA_VERSION, run_migrations
from repro.store.provenance import git_sha, kernel_tier, provenance, worker_id
from repro.store.store import Store, StoredResult, open_store, store_from_env

__all__ = [
    "ENV_STORE_DSN",
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "ParsedDSN",
    "PostgresBackend",
    "SQLiteBackend",
    "Store",
    "StoreError",
    "StoreUnavailableError",
    "StoredResult",
    "backend_for_dsn",
    "git_sha",
    "kernel_tier",
    "open_store",
    "parse_dsn",
    "provenance",
    "run_migrations",
    "store_from_env",
    "worker_id",
]
