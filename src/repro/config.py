"""System configuration: the paper's Table 5 parameters in one place.

Every experiment builds a :class:`NetSparseConfig` (defaults reproduce
the paper's 128-node leaf-spine system) and toggles the feature flags
for ablations (Table 8) or overrides single fields for sensitivity
sweeps (Figures 15-18).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

__all__ = ["NetSparseConfig", "FeatureFlags"]


@dataclass(frozen=True)
class FeatureFlags:
    """Which NetSparse mechanisms are active (Table 8 ablation axes).

    The rows of Table 8 correspond to cumulative settings:

    - ``RIG``       — rig_offload only
    - ``Filter``    — + filtering
    - ``Coalesce``  — + coalescing
    - ``ConcNIC``   — + concat_nic
    - ``Switch``    — + concat_switch + property_cache
    """

    rig_offload: bool = True
    filtering: bool = True
    coalescing: bool = True
    concat_nic: bool = True
    concat_switch: bool = True
    property_cache: bool = True

    @staticmethod
    def ablation_level(level: str) -> "FeatureFlags":
        """Cumulative feature sets named as in Table 8."""
        levels = ["rig", "filter", "coalesce", "conc_nic", "switch"]
        if level not in levels:
            raise ValueError(f"unknown ablation level {level!r}; use {levels}")
        i = levels.index(level)
        return FeatureFlags(
            rig_offload=True,
            filtering=i >= 1,
            coalescing=i >= 2,
            concat_nic=i >= 3,
            concat_switch=i >= 4,
            property_cache=i >= 4,
        )


@dataclass(frozen=True)
class NetSparseConfig:
    """Table 5 system parameters (sizes in bytes, rates in bytes/s or Hz)."""

    # -- cluster -------------------------------------------------------
    n_nodes: int = 128
    n_racks: int = 8
    nodes_per_rack: int = 16
    topology: str = "leafspine"          # leafspine | hyperx | dragonfly

    # -- node ----------------------------------------------------------
    host_cores: int = 64
    host_freq: float = 2.2e9
    pcie_bandwidth: float = 256e9        # Gen6, bytes/s
    pcie_latency: float = 200e-9         # one-way

    # -- network -------------------------------------------------------
    link_bandwidth: float = 400e9 / 8    # 400 Gbps in bytes/s
    mtu: int = 1500
    #: Header bytes: upper layers (RDMA etc.), concat layer with #PRs
    #: field, solo concat layer (no #PRs), per-PR layer (Figure 6).
    header_upper: int = 50
    header_concat: int = 14
    header_concat_solo: int = 10
    header_pr: int = 18

    # -- SNIC ----------------------------------------------------------
    snic_freq: float = 2.2e9
    snic_dram_bandwidth: float = 64e9
    n_rig_units: int = 32                # half client, half server threads
    rig_batch_nonzeros: int = 32 * 1024  # paper-scale batch (§8.2)
    pending_pr_entries: int = 256
    lsq_entries: int = 64
    rig_cmd_overhead: float = 1.0e-6     # host-side cost to launch one RIG cmd

    # -- concatenation --------------------------------------------------
    concat_delay_cycles_nic: int = 500
    concat_delay_cycles_switch: int = 125
    concat_sram_bytes: int = 512 * 1024

    # -- property cache --------------------------------------------------
    pcache_bytes: int = 32 * 1024 * 1024
    pcache_ways: int = 16
    pcache_segments: int = 32
    pcache_min_line: int = 16
    pcache_max_line: int = 512
    pcache_latency_cycles: int = 16
    switch_freq: float = 2.0e9

    # -- software (baselines, §8.1 calibration) -------------------------
    #: Per-PR CPU cost on one core: fixed part plus per-payload-byte part.
    #: Calibrated so 64 cores reach the paper's measured SA goodput
    #: (~10% of line rate at K=16, Figure 10 / Table 7).
    sw_pr_cost_fixed: float = 700e-9
    sw_pr_cost_per_byte: float = 1.8e-9

    # -- mechanisms active ------------------------------------------------
    features: FeatureFlags = field(default_factory=FeatureFlags)

    # -- derived -----------------------------------------------------------

    @property
    def n_client_units(self) -> int:
        return self.n_rig_units // 2

    @property
    def vanilla_pr_header(self) -> int:
        """Header of one PR sent alone: upper + solo-concat + PR layers.

        §6.1.1: 50 + 10 + 18 = 78 bytes.
        """
        return self.header_upper + self.header_concat_solo + self.header_pr

    def property_bytes(self, k: int) -> int:
        """Payload bytes of one property with K single-precision elements."""
        if k < 1:
            raise ValueError("K must be >= 1")
        return 4 * k

    def max_prs_per_packet(self, pr_payload: int) -> int:
        """How many PRs of a given payload size fit in one MTU packet."""
        room = self.mtu - self.header_upper - self.header_concat
        per_pr = self.header_pr + pr_payload
        return max(room // per_pr, 1)

    def concat_packet_bytes(self, n_prs: int, pr_payload: int) -> int:
        """Wire bytes of a packet carrying ``n_prs`` concatenated PRs."""
        if n_prs < 1:
            raise ValueError("a packet carries at least one PR")
        if n_prs == 1:
            return self.vanilla_pr_header + pr_payload
        return (
            self.header_upper
            + self.header_concat
            + n_prs * (self.header_pr + pr_payload)
        )

    def with_features(self, **kw) -> "NetSparseConfig":
        return replace(self, features=replace(self.features, **kw))

    # -- canonical identity -------------------------------------------

    def canonical_dict(self) -> dict:
        """Every field (feature flags nested), suitable for stable JSON."""
        return asdict(self)

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the same config always
        serializes to the same bytes (floats via ``repr``, which py3
        guarantees round-trips exactly)."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable content hash of this configuration.

        Used (with matrix identity, scheme and a code-version salt) to
        key the on-disk simulation result cache — any changed field,
        including a single feature flag, changes the digest.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def sw_pr_cost(self, payload_bytes: int) -> float:
        """Per-PR software handling cost on one core (seconds)."""
        return self.sw_pr_cost_fixed + self.sw_pr_cost_per_byte * payload_bytes

    def idx_filter_bytes(self, n_cols: int) -> int:
        """SNIC DRAM the Idx Filter needs: one bit per matrix column
        (§5.2 — 16 GB of SNIC DRAM covers ~10^11 columns)."""
        if n_cols < 0:
            raise ValueError("n_cols must be nonnegative")
        return -(-n_cols // 8)

    def idx_filter_max_columns(self) -> int:
        """Largest column count the SNIC DRAM's filter can cover."""
        dram_bytes = 16 * 1024**3     # Table 5: 16 GB SNIC DDR
        return dram_bytes * 8
