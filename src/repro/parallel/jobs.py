"""Job decomposition: one deterministic simulation per job.

A :class:`SimJob` captures *everything* that determines a
communication-scheme simulation's output — scheme, benchmark matrix
(name / scale / seed), K, the full :class:`NetSparseConfig`, and the
optional overrides the experiment modules use (paper-scale RIG batch,
explicit scale factor, a reconstructible fabric topology, the
partitioning strategy).  Jobs are frozen, picklable (they cross the
process-pool boundary) and hashable into a stable content digest that
keys the on-disk result cache.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import NetSparseConfig

__all__ = ["CODE_SALT", "SCHEMES", "SimJob", "execute_job", "timed_execute"]

#: Cache-version salt.  Bump whenever simulator semantics change so
#: stale cached results can never leak into fresh tables.
CODE_SALT = "netsparse-sim-v2"

#: Communication schemes the engine knows how to dispatch.
SCHEMES = ("netsparse", "saopt", "suopt", "hybrid")

#: Partitioning strategies representable in a job (see repro.partition).
PARTITIONS = ("rows", "nnz")


@dataclass(frozen=True)
class SimJob:
    """One independent ``(matrix, K, scheme, config)`` simulation.

    ``rig_batch`` is in paper-scale nonzeros (``None`` — use the
    config's default, exactly like :func:`simulate_netsparse`).
    ``scale`` of ``None`` means the benchmark's own
    :func:`~repro.sparse.suite.scale_factor`.  ``topology`` is either
    ``None`` (build the config's fabric) or a reconstructible spec
    tuple ``("leafspine", n_racks, nodes_per_rack, n_spines)``.
    ``faults`` is either ``None`` (fault-free) or the canonical JSON of
    a :class:`~repro.faults.FaultPlan` (string, so the job stays
    hashable and picklable); the plan's analytic penalties are applied
    to the result, and its content is part of the cache digest.
    """

    scheme: str
    matrix: str
    k: int
    config: NetSparseConfig
    scale_name: str = "small"
    seed: int = 7
    rig_batch: Optional[int] = None
    scale: Optional[float] = None
    topology: Optional[Tuple] = None
    partition: str = "rows"
    faults: Optional[str] = None

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"unknown partition {self.partition!r}; "
                f"expected one of {PARTITIONS}"
            )
        if self.topology is not None and self.topology[0] != "leafspine":
            raise ValueError(
                f"unsupported topology spec {self.topology!r}; "
                "only ('leafspine', n_racks, nodes_per_rack, n_spines) "
                "is reconstructible"
            )
        if self.faults is not None:
            if not isinstance(self.faults, str):
                raise ValueError(
                    "faults must be a FaultPlan canonical-JSON string "
                    "(use plan.canonical_json()) or None"
                )
            from repro.faults import FaultPlan

            FaultPlan.from_json(self.faults)  # validate eagerly

    # -- identity ------------------------------------------------------

    def key_dict(self) -> dict:
        """The canonical, JSON-stable identity of this job."""
        return {
            "salt": CODE_SALT,
            "scheme": self.scheme,
            "matrix": self.matrix,
            "k": self.k,
            "scale_name": self.scale_name,
            "seed": self.seed,
            "rig_batch": self.rig_batch,
            # repr() keeps full float precision and is stable in py3
            "scale": None if self.scale is None else repr(float(self.scale)),
            "topology": None if self.topology is None else list(self.topology),
            "partition": self.partition,
            "faults": self.faults,
            "config": self.config.canonical_dict(),
        }

    def digest(self) -> str:
        """Stable content hash — the cache key for this job's result."""
        payload = json.dumps(self.key_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> dict:
        """Small human-readable metadata stored next to cached results.

        ``faults_digest`` carries the fault plan's content hash so the
        store tier can stamp it into every result row's provenance
        without re-parsing the plan JSON."""
        return {
            "scheme": self.scheme,
            "matrix": self.matrix,
            "k": self.k,
            "scale_name": self.scale_name,
            "seed": self.seed,
            "faults_digest": self.faults_digest(),
        }

    def faults_digest(self) -> Optional[str]:
        """Content hash of the attached fault plan, or ``None``."""
        if self.faults is None:
            return None
        return hashlib.sha256(self.faults.encode("utf-8")).hexdigest()


#: Process-level fabric memo.  A topology is immutable during
#: simulation (the model only reads routes/racks/link bandwidths), and
#: sharing one instance across a sweep also shares its route cache —
#: routes for a 128-node fabric are recomputed once per process instead
#: of once per job.
_topology_cache: dict = {}
_TOPOLOGY_CACHE_MAX = 16


def _build_topology(job: SimJob):
    from repro.cluster import build_cluster_topology
    from repro.network.topology import LeafSpine

    cfg = job.config
    key = (job.topology, cfg.topology, cfg.n_racks, cfg.nodes_per_rack,
           cfg.link_bandwidth)
    topo = _topology_cache.get(key)
    if topo is not None:
        return topo
    if job.topology is None:
        topo = build_cluster_topology(cfg)
    else:
        _, n_racks, nodes_per_rack, n_spines = job.topology
        topo = LeafSpine(n_racks=n_racks, nodes_per_rack=nodes_per_rack,
                         n_spines=n_spines,
                         link_bandwidth=cfg.link_bandwidth)
    if len(_topology_cache) >= _TOPOLOGY_CACHE_MAX:
        _topology_cache.clear()
    _topology_cache[key] = topo
    return topo


def execute_job(job: SimJob):
    """Run one job to its :class:`~repro.results.CommResult`.

    Module-level (and import-light) so it is picklable as a process
    pool's task function; each worker regenerates and memoizes the
    benchmark matrices it needs via ``load_benchmark``'s ``lru_cache``.
    """
    from repro import telemetry
    from repro.baselines.hybrid import simulate_hybrid
    from repro.baselines.saopt import simulate_saopt
    from repro.baselines.su import simulate_suopt
    from repro.cluster import simulate_netsparse
    from repro.partition import cached_partition
    from repro.sparse.suite import load_benchmark, scale_factor

    mat = load_benchmark(job.matrix, job.scale_name, seed=job.seed)
    sc = job.scale if job.scale is not None else scale_factor(job.matrix, mat)
    cfg = job.config
    with telemetry.span(f"sim.{job.scheme}", matrix=job.matrix, k=job.k):
        if job.scheme == "suopt":
            result = simulate_suopt(mat, job.k, cfg)
        elif job.scheme == "saopt":
            result = simulate_saopt(mat, job.k, cfg, scale=sc)
        elif job.scheme == "hybrid":
            result = simulate_hybrid(mat, job.k, cfg, scale=sc)
        else:
            part = (
                cached_partition(mat, cfg.n_nodes, kind="nnz")
                if job.partition == "nnz"
                else None
            )
            result = simulate_netsparse(mat, job.k, cfg, _build_topology(job),
                                        rig_batch=job.rig_batch, scale=sc,
                                        partition=part)
    if job.faults is not None:
        from repro.faults import FaultPlan, apply_faults

        result = apply_faults(result, FaultPlan.from_json(job.faults), cfg)
    return result


def timed_execute(job: SimJob):
    """``(result, elapsed_seconds)`` — the pool task the engine maps."""
    t0 = time.perf_counter()
    result = execute_job(job)
    return result, time.perf_counter() - t0
