"""The execution engine: fan jobs out, memoize every result.

Three layers answer a :class:`~repro.parallel.jobs.SimJob`:

1. an in-process memo (duplicate jobs inside one run — the historical
   ``lru_cache`` in the headline experiments, generalized),
2. the content-addressed on-disk :class:`ResultCache` (repeat runs),
3. real execution — serial, or mapped over a ``ProcessPoolExecutor``
   when the engine was configured with ``jobs > 1``.

Parallel and serial execution are bit-identical: every simulator is
deterministic, and results are reassembled by content digest in the
caller's submission order.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import telemetry
from repro.config import NetSparseConfig
from repro.core import reusedist
from repro.core.batchmode import batch_enabled
from repro.parallel.batch import execute_group, plan_batches
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import SimJob, timed_execute

__all__ = [
    "EngineStats",
    "ExecutionEngine",
    "JobHandle",
    "configure_engine",
    "engine_scope",
    "get_engine",
    "set_engine",
    "simulate",
    "simulate_many",
]


@dataclass
class EngineStats:
    """Hit/miss/timing counters surfaced by the CLI and the report."""

    jobs: int = 0            # jobs requested
    memo_hits: int = 0       # answered from the in-process memo
    cache_hits: int = 0      # answered from the on-disk cache
    executed: int = 0        # actually simulated (cache misses)
    batched: int = 0         # executed as a fused-group rider (REPRO_BATCH)
    sim_seconds: float = 0.0    # compute spent executing jobs
    saved_seconds: float = 0.0  # recorded compute answered from cache

    @property
    def hit_rate(self) -> float:
        if self.jobs == 0:
            return 0.0
        return (self.memo_hits + self.cache_hits) / self.jobs

    def summary(self) -> str:
        return (
            f"jobs={self.jobs} memo-hits={self.memo_hits} "
            f"cache-hits={self.cache_hits} executed={self.executed} "
            f"batched={self.batched} hit-rate={self.hit_rate:.0%} "
            f"sim={self.sim_seconds:.1f}s saved={self.saved_seconds:.1f}s"
        )

    def as_dict(self) -> dict:
        """JSON-ready view — the service's ``/v1/stats`` payload."""
        return {
            "jobs": self.jobs,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "batched": self.batched,
            "hit_rate": round(self.hit_rate, 4),
            "sim_seconds": round(self.sim_seconds, 4),
            "saved_seconds": round(self.saved_seconds, 4),
        }


@dataclass
class JobHandle:
    """One async-bridge submission (:meth:`ExecutionEngine.submit`).

    ``future`` resolves to the job's result object.  ``source`` says
    how the submission was answered: ``"memo"``/``"cache"`` handles are
    already resolved, ``"inflight"`` handles share another submission's
    execution (cancelling them is refused — someone else is waiting),
    and ``"executed"`` handles own a pending execution that can still
    be cancelled while queued behind the bridge's worker threads.
    """

    digest: str
    future: Future
    source: str = "executed"
    _inner: Optional[Future] = field(default=None, repr=False)

    def cancel(self) -> bool:
        """Cancel a not-yet-started execution; ``False`` otherwise."""
        if self.source != "executed" or self._inner is None:
            return False
        return self._inner.cancel()

    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None):
        return self.future.result(timeout)


def _pool_context():
    # fork shares the parent's already-generated matrices for free;
    # fall back to the platform default (spawn) where unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ExecutionEngine:
    """Runs batches of :class:`SimJob` with memoization and fan-out."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        self.jobs = max(int(jobs), 1)
        self.cache = cache
        #: Ambient attribution for the run ledger (``experiment`` is the
        #: CLI's experiment id; the service stamps its replica identity).
        self.context: Dict[str, str] = {}
        self.stats = EngineStats()
        self._memo: Dict[str, object] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        # Async-bridge state: in-flight submissions by digest, executed
        # on a thread pool so telemetry keeps flowing in-process.
        self._bridge: Optional[ThreadPoolExecutor] = None
        self._inflight: Dict[str, JobHandle] = {}
        self._lock = threading.RLock()
        self._closed = False

    # -- execution -----------------------------------------------------

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[object]:
        """Results for ``jobs``, in order; each distinct job runs once."""
        jobs = list(jobs)
        digests = [job.digest() for job in jobs]
        pending: Dict[str, SimJob] = {}
        answered: List = []            # (job, digest, source) for the ledger
        with self._lock:
            for digest, job in zip(digests, jobs):
                self.stats.jobs += 1
                telemetry.count("engine.jobs")
                if digest in self._memo or digest in pending:
                    self.stats.memo_hits += 1
                    telemetry.count("engine.memo_hits")
                    answered.append((job, digest, "memo"))
                    continue
                entry = self.cache.get(digest) if self.cache else None
                if entry is not None:
                    self._memo[digest] = entry.result
                    self.stats.cache_hits += 1
                    self.stats.saved_seconds += entry.elapsed
                    telemetry.count("engine.cache_hits")
                    answered.append((job, digest, "cache"))
                else:
                    pending[digest] = job
        for job, digest, source in answered:
            self._record_run(job, digest, source)
        if pending:
            self._execute(pending)
        with self._lock:
            return [self._memo[digest] for digest in digests]

    # -- run ledger ----------------------------------------------------

    def _store(self):
        """The cache's shared store tier, or ``None``."""
        return self.cache.store if self.cache is not None else None

    def _record_run(self, job: SimJob, digest: str, source: str,
                    elapsed: float = 0.0) -> None:
        """Append one row to the store's run ledger (best-effort: the
        ledger is an audit trail, never a point of failure)."""
        store = self._store()
        if store is None:
            return
        try:
            store.record_run(digest, source=source, elapsed=elapsed,
                             worker=self.context.get("worker"),
                             meta=job.describe(),
                             experiment=self.context.get("experiment"))
        except Exception:
            telemetry.count("store.errors", op="ledger")

    # -- async bridge ---------------------------------------------------

    def submit(self, job: SimJob, *,
               on_start: Optional[Callable[[], None]] = None) -> JobHandle:
        """Schedule one job without blocking; returns a :class:`JobHandle`.

        The bridge the service front-end (:mod:`repro.service`) runs
        on: memo and disk-cache hits come back already resolved,
        duplicate in-flight digests share a single execution, and
        everything else runs on a pool of ``jobs`` worker *threads* in
        this process — so the active telemetry registry still sees the
        per-stage spans the simulators record (the process-pool batch
        path executes with telemetry disabled in the workers).

        ``on_start`` is invoked in the worker thread immediately before
        execution begins — the hook the service uses to flip a job to
        ``running`` and to bind the thread for span attribution.
        """
        digest = job.digest()
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self.stats.jobs += 1
            telemetry.count("engine.jobs")
            if digest in self._memo:
                self.stats.memo_hits += 1
                telemetry.count("engine.memo_hits")
                self._record_run(job, digest, "memo")
                fut: Future = Future()
                fut.set_result(self._memo[digest])
                return JobHandle(digest=digest, future=fut, source="memo")
            shared = self._inflight.get(digest)
            if shared is not None:
                self.stats.memo_hits += 1
                telemetry.count("engine.memo_hits")
                telemetry.count("engine.inflight_hits")
                self._record_run(job, digest, "inflight")
                return JobHandle(digest=digest, future=shared.future,
                                 source="inflight")
            entry = self.cache.get(digest) if self.cache else None
            if entry is not None:
                self._memo[digest] = entry.result
                self.stats.cache_hits += 1
                self.stats.saved_seconds += entry.elapsed
                telemetry.count("engine.cache_hits")
                self._record_run(job, digest, "cache")
                fut = Future()
                fut.set_result(entry.result)
                return JobHandle(digest=digest, future=fut, source="cache")

            outer: Future = Future()
            handle = JobHandle(digest=digest, future=outer, source="executed")
            self._inflight[digest] = handle

            def _task():
                if on_start is not None:
                    on_start()
                return self._timed_instrumented(job)

            def _finish(inner: Future) -> None:
                with self._lock:
                    self._inflight.pop(digest, None)
                if inner.cancelled():
                    telemetry.count("engine.cancelled")
                    outer.cancel()
                    return
                exc = inner.exception()
                if exc is not None:
                    telemetry.count("engine.failed")
                    outer.set_exception(exc)
                    return
                result, elapsed = inner.result()
                with self._lock:
                    self._memo[digest] = result
                    self.stats.executed += 1
                    self.stats.sim_seconds += elapsed
                telemetry.count("engine.executed")
                telemetry.observe("engine.job.seconds", elapsed,
                                  scheme=job.scheme)
                if self.cache is not None:
                    try:
                        self.cache.put(digest, result, meta=job.describe(),
                                       elapsed=elapsed)
                    except Exception:
                        # A full disk must not fail a computed job.
                        telemetry.count("engine.cache_put_errors")
                self._record_run(job, digest, "executed", elapsed=elapsed)
                outer.set_result(result)

            inner = self._ensure_bridge().submit(_task)
            handle._inner = inner
            inner.add_done_callback(_finish)
            return handle

    def describe(self) -> dict:
        """Engine topology + stats, JSON-ready (service ``/v1/stats``)."""
        with self._lock:
            store = self._store()
            return {
                "workers": self.jobs,
                "cache_dir": str(self.cache.root) if self.cache else None,
                "store_dsn": store.dsn if store is not None else None,
                "inflight": len(self._inflight),
                "closed": self._closed,
                "stats": self.stats.as_dict(),
            }

    def run_job(self, job: SimJob):
        return self.run_jobs([job])[0]

    def _execute(self, pending: Dict[str, SimJob]) -> None:
        if batch_enabled() and len(pending) > 1:
            self._execute_batched(pending)
            return
        items = list(pending.items())
        if self.jobs > 1 and len(items) > 1:
            # Dispatch in trace order so one worker's chunk reuses the
            # trace its previous job just built instead of every worker
            # racing to build the same partition (the submission order
            # is restored by digest when results are memoized).
            items.sort(key=lambda kv: self._trace_key(kv[1]))
            if self._pool is None:
                self._prewarm_traces([job for _, job in items])
            # Worker processes carry their own (disabled) telemetry —
            # `netsparse profile` therefore always runs serial.
            pool = self._ensure_pool()
            outcomes = pool.map(timed_execute, [job for _, job in items],
                                chunksize=1)
        else:
            outcomes = (self._timed_instrumented(job) for _, job in items)
        for (digest, job), (result, elapsed) in zip(items, outcomes):
            self._note_executed(digest, job, result, elapsed)

    def _execute_batched(self, pending: Dict[str, SimJob]) -> None:
        """Planner path: evaluate fused groups (``REPRO_BATCH=1``).

        Each group's members run back-to-back — in one pool worker, or
        consecutively on the serial path — so the cluster model's batch
        memos fold their shared stages.  Results are identical to the
        per-job path; only attribution (``source="batched"`` for group
        riders) and wall time differ.
        """
        digest_of = {job: digest for digest, job in pending.items()}
        plan = plan_batches(list(pending.values()))
        telemetry.count("perf.batch.groups", plan.n_groups)
        telemetry.count("perf.batch.folded", plan.n_folded)
        prof0 = reusedist.profile_stats()
        if self.jobs > 1 and plan.n_groups > 1:
            if self._pool is None:
                self._prewarm_traces(list(pending.values()))
            pool = self._ensure_pool()
            group_outcomes = pool.map(execute_group, plan.groups,
                                      chunksize=1)
        else:
            group_outcomes = (
                [self._timed_instrumented(job) for job in group]
                for group in plan.groups
            )
        for group, outcomes in zip(plan.groups, group_outcomes):
            for rank, (job, (result, elapsed)) in enumerate(
                    zip(group, outcomes)):
                source = "batched" if rank and len(group) > 1 else "executed"
                self._note_executed(digest_of[job], job, result, elapsed,
                                    source=source)
        prof1 = reusedist.profile_stats()
        build = prof1["build_seconds"] - prof0["build_seconds"]
        score = prof1["score_seconds"] - prof0["score_seconds"]
        if build or score:
            telemetry.observe("perf.batch.profile.build_seconds", build)
            telemetry.observe("perf.batch.profile.score_seconds", score)

    def _note_executed(self, digest: str, job: SimJob, result,
                       elapsed: float, source: str = "executed") -> None:
        with self._lock:
            self._memo[digest] = result
            self.stats.executed += 1
            self.stats.sim_seconds += elapsed
            if source == "batched":
                self.stats.batched += 1
        telemetry.count("engine.executed")
        telemetry.observe("engine.job.seconds", elapsed, scheme=job.scheme)
        if self.cache is not None:
            self.cache.put(digest, result, meta=job.describe(),
                           elapsed=elapsed)
        self._record_run(job, digest, source, elapsed=elapsed)

    @staticmethod
    def _trace_key(job: SimJob) -> tuple:
        """The (partition, trace) identity a job draws from the
        :class:`~repro.partition.tracecache.TraceCache`."""
        kind = (
            "nnz"
            if job.scheme == "netsparse" and job.partition == "nnz"
            else "rows"
        )
        return (job.matrix, job.scale_name, job.seed,
                job.config.n_nodes, kind)

    @staticmethod
    def _prewarm_traces(jobs: Sequence[SimJob]) -> None:
        """Build the batch's distinct partitions + traces in the parent
        *before* the pool forks, so workers inherit the TraceCache
        entries copy-on-write instead of each rebuilding them.  Only
        worth doing for the fork that creates the pool; bounded by the
        cache size so prewarming never evicts what it just built."""
        from repro.partition import get_trace_cache
        from repro.sparse.suite import load_benchmark

        trace_cache = get_trace_cache()
        seen = set()
        for job in jobs:
            key = ExecutionEngine._trace_key(job)
            if key in seen:
                continue
            if len(seen) >= trace_cache.max_entries:
                break
            seen.add(key)
            mat = load_benchmark(job.matrix, job.scale_name, seed=job.seed)
            trace_cache.get_partition(mat, job.config.n_nodes, kind=key[-1])
            telemetry.count("perf.trace_cache.prewarmed")

    @staticmethod
    def _timed_instrumented(job: SimJob):
        with telemetry.span("engine.job", scheme=job.scheme,
                            matrix=job.matrix, k=job.k):
            return timed_execute(job)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=_pool_context()
                )
            return self._pool

    def _ensure_bridge(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._bridge is None:
                self._bridge = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="engine-bridge",
                )
            return self._bridge

    def close(self) -> None:
        """Release both pools.  Idempotent and safe to call from
        several threads at once: the pools are detached under the lock
        (so only one caller shuts each down) and later calls are
        no-ops.  Bridge submissions already running are drained, not
        killed; afterwards :meth:`submit` refuses new work while the
        synchronous paths keep answering (serially) — matching the
        historical post-close behavior."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            bridge, self._bridge = self._bridge, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if bridge is not None:
            bridge.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- process-global default engine ------------------------------------

_default_engine: Optional[ExecutionEngine] = None
_engine_lock = threading.Lock()


def get_engine() -> ExecutionEngine:
    """The process default: serial and uncached until configured."""
    global _default_engine
    if _default_engine is None:
        with _engine_lock:
            if _default_engine is None:
                _default_engine = ExecutionEngine()
    return _default_engine


def configure_engine(jobs: int = 1, cache_dir=None,
                     use_cache: bool = True) -> ExecutionEngine:
    """Install (and return) a new default engine — the CLI entry point.

    The replacement is built *before* the previous default is touched,
    so a failing :class:`ResultCache` constructor (bad ``cache_dir``)
    leaves the old engine installed and its pools open.
    """
    global _default_engine
    cache = ResultCache(cache_dir) if use_cache else None
    engine = ExecutionEngine(jobs=jobs, cache=cache)
    with _engine_lock:
        previous = _default_engine
        _default_engine = engine
    if previous is not None:
        previous.close()
    return engine


def set_engine(engine: Optional[ExecutionEngine]) -> Optional[ExecutionEngine]:
    """Swap the default engine, returning the previous one (tests).

    The swap itself is atomic under a module lock, so two threads
    swapping concurrently always see a consistent previous engine —
    nesting :func:`engine_scope` across *different* threads still
    needs external coordination, but can no longer tear the global."""
    global _default_engine
    with _engine_lock:
        previous = _default_engine
        _default_engine = engine
        return previous


@contextmanager
def engine_scope(engine: ExecutionEngine):
    """Temporarily make ``engine`` the default, restoring on exit."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)


# -- convenience front door -------------------------------------------


def simulate(scheme: str, matrix: str, k: int, *, config=None,
             scale_name: str = "small", seed: int = 7,
             rig_batch: Optional[int] = None, scale: Optional[float] = None,
             topology=None, partition: str = "rows",
             faults: Optional[str] = None):
    """One simulation through the default engine (memo + cache aware)."""
    job = SimJob(scheme=scheme, matrix=matrix, k=k,
                 config=config or NetSparseConfig(), scale_name=scale_name,
                 seed=seed, rig_batch=rig_batch, scale=scale,
                 topology=topology, partition=partition, faults=faults)
    return get_engine().run_job(job)


def simulate_many(jobs: Sequence[SimJob]) -> List[object]:
    """A batch of simulations through the default engine."""
    return get_engine().run_jobs(jobs)
