"""Parallel, cache-aware execution of simulation jobs.

The experiment harness decomposes its work into independent
:class:`~repro.parallel.jobs.SimJob` records — one deterministic
``(matrix, K, scheme, config)`` communication simulation each — and
runs them through an :class:`~repro.parallel.engine.ExecutionEngine`
that fans jobs out across worker processes and memoizes every result
in a content-addressed on-disk cache.  Because the simulators are
fully deterministic (ties broken by explicit priority and sequence
number), a cache hit is bit-identical to recomputation.

Typical use::

    from repro.parallel import configure_engine, simulate

    configure_engine(jobs=4, cache_dir="~/.cache/netsparse")
    result = simulate("netsparse", "arabic", k=16, scale_name="tiny")

The CLI (``netsparse run/report --jobs N [--cache-dir D | --no-cache]``)
configures the process-global default engine; library callers that do
nothing get the historical behavior (serial, uncached).
"""

from repro.parallel.batch import BatchPlan, batch_enabled, plan_batches
from repro.parallel.cache import (
    ENV_STORE_DSN,
    ResultCache,
    default_cache_dir,
)
from repro.parallel.engine import (
    EngineStats,
    ExecutionEngine,
    JobHandle,
    configure_engine,
    engine_scope,
    get_engine,
    set_engine,
    simulate,
    simulate_many,
)
from repro.parallel.jobs import CODE_SALT, SimJob, execute_job

__all__ = [
    "BatchPlan",
    "CODE_SALT",
    "ENV_STORE_DSN",
    "EngineStats",
    "ExecutionEngine",
    "JobHandle",
    "ResultCache",
    "SimJob",
    "batch_enabled",
    "configure_engine",
    "default_cache_dir",
    "engine_scope",
    "execute_job",
    "get_engine",
    "plan_batches",
    "set_engine",
    "simulate",
    "simulate_many",
]
