"""Content-addressed on-disk cache for simulation results.

Entries are pickled :class:`~repro.results.CommResult` records stored
under ``<root>/<digest[:2]>/<digest>.pkl``, keyed by the owning
:class:`~repro.parallel.jobs.SimJob`'s content digest (which already
folds in a code-version salt).  Each entry carries the wall-clock
seconds the original computation took, so ``netsparse cache info`` can
report how much simulation time the cache is holding.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

__all__ = ["CacheEntry", "CacheInfo", "ResultCache", "default_cache_dir",
           "ENV_CACHE_DIR"]

#: Environment override for the default cache location.
ENV_CACHE_DIR = "NETSPARSE_CACHE_DIR"

_ENTRY_FORMAT = 1


def default_cache_dir() -> Path:
    """``$NETSPARSE_CACHE_DIR``, else ``$XDG_CACHE_HOME/netsparse``,
    else ``~/.cache/netsparse``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "netsparse"


@dataclass
class CacheEntry:
    """One stored result plus the provenance needed for ``cache info``."""

    digest: str
    meta: dict
    elapsed: float
    created: float
    result: object = None


@dataclass
class CacheInfo:
    """Aggregate cache statistics (the ``netsparse cache info`` payload)."""

    root: Path
    n_entries: int = 0
    total_bytes: int = 0
    sim_seconds: float = 0.0
    by_scheme: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"cache dir    : {self.root}",
            f"entries      : {self.n_entries}",
            f"size         : {self.total_bytes / 1e6:.2f} MB",
            f"sim time held: {self.sim_seconds:.1f}s of simulation",
        ]
        for scheme in sorted(self.by_scheme):
            lines.append(f"  {scheme:<10} {self.by_scheme[scheme]} entries")
        return "\n".join(lines)


class ResultCache:
    """Content-addressed pickle store; corrupt entries read as misses."""

    def __init__(self, root=None):
        self.root = Path(root).expanduser() if root else default_cache_dir()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[CacheEntry]:
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != _ENTRY_FORMAT:
                raise ValueError("stale cache entry format")
            return CacheEntry(
                digest=digest,
                meta=payload.get("meta", {}),
                elapsed=payload.get("elapsed", 0.0),
                created=payload.get("created", 0.0),
                result=payload["result"],
            )
        except FileNotFoundError:
            return None
        except Exception:
            # Unreadable/corrupt entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, digest: str, result, *, meta: dict, elapsed: float) -> None:
        path = self._path(digest)
        payload = {
            "format": _ENTRY_FORMAT,
            "digest": digest,
            "meta": meta,
            "elapsed": float(elapsed),
            "created": time.time(),
            "result": result,
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        # Atomic publish: the full entry is staged in a temp file in
        # the destination directory and renamed into place, so readers
        # only ever see complete entries.  Concurrent writers of the
        # same digest race benignly (identical deterministic content
        # either way), and a concurrent `clear()` (or an external
        # rmtree) sweeping the shard directory away between mkdir and
        # rename just costs one retry.
        for attempt in range(2):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                if attempt:
                    raise
                continue
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                self._unlink_quiet(tmp)
                if attempt:
                    raise
            except BaseException:
                self._unlink_quiet(tmp)
                raise

    @staticmethod
    def _unlink_quiet(tmp) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------

    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.pkl"))

    def iter_entries(self) -> Iterator[CacheEntry]:
        """Entry metadata (results included) for every readable file."""
        for path in self._entry_files():
            entry = self.get(path.stem)
            if entry is not None:
                yield entry

    def info(self) -> CacheInfo:
        info = CacheInfo(root=self.root)
        for path in self._entry_files():
            entry = self.get(path.stem)
            if entry is None:
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue  # entry cleared between glob and stat
            info.n_entries += 1
            info.total_bytes += size
            info.sim_seconds += entry.elapsed
            scheme = entry.meta.get("scheme", "?")
            info.by_scheme[scheme] = info.by_scheme.get(scheme, 0) + 1
        return info

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed.

        Also sweeps orphaned ``*.tmp`` staging files (crashed writers).
        Safe to run while other processes are reading and writing: their
        in-progress ``put`` calls retry, their ``get`` calls miss."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for tmp in self.root.glob("*/*.tmp"):
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return removed
