"""Content-addressed result cache: filesystem tier + optional store tier.

Entries are pickled :class:`~repro.results.CommResult` records stored
under ``<root>/<digest[:2]>/<digest>.pkl``, keyed by the owning
:class:`~repro.parallel.jobs.SimJob`'s content digest (which already
folds in a code-version salt).  Each entry carries the wall-clock
seconds the original computation took, so ``netsparse cache info`` can
report how much simulation time the cache is holding.

When ``REPRO_STORE_DSN`` is set (or a :class:`~repro.store.Store` is
passed explicitly) the cache grows a second, shared tier: misses fall
through to the store, hits are backfilled into the local filesystem,
and every ``put`` also writes a provenance-stamped row to the store —
so several processes (or service replicas on different machines)
pointed at one store share one cache.  The store payload travels
through the service's bit-exact ``__nd__`` codec, so a store hit is
bitwise identical to a filesystem hit and to recomputation.  Store
failures degrade to the filesystem tier (counted under
``store.errors``), never break a simulation.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro import telemetry

__all__ = ["CacheEntry", "CacheInfo", "ResultCache", "default_cache_dir",
           "ENV_CACHE_DIR", "ENV_STORE_DSN"]

#: Environment override for the default cache location.
ENV_CACHE_DIR = "NETSPARSE_CACHE_DIR"

#: Environment opt-in for the shared store tier.  The literal is
#: duplicated from :mod:`repro.store.backend` so the common case (no
#: store) never imports the store package; a test pins them equal.
ENV_STORE_DSN = "REPRO_STORE_DSN"

_ENTRY_FORMAT = 1


def default_cache_dir() -> Path:
    """``$NETSPARSE_CACHE_DIR``, else ``$XDG_CACHE_HOME/netsparse``,
    else ``~/.cache/netsparse``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "netsparse"


@dataclass
class CacheEntry:
    """One stored result plus the provenance needed for ``cache info``."""

    digest: str
    meta: dict
    elapsed: float
    created: float
    result: object = None


@dataclass
class CacheInfo:
    """Aggregate cache statistics (the ``netsparse cache info`` payload)."""

    root: Path
    n_entries: int = 0
    total_bytes: int = 0
    sim_seconds: float = 0.0
    by_scheme: Dict[str, int] = field(default_factory=dict)
    #: Orphaned ``*.tmp`` staging files stranded by crashed writers
    #: (``clear`` reclaims them).
    tmp_files: int = 0
    tmp_bytes: int = 0
    #: ``Store.describe()`` of the active store tier, or ``None``.
    store: Optional[dict] = None

    def format(self) -> str:
        lines = [
            f"cache dir    : {self.root}",
            f"entries      : {self.n_entries}",
            f"size         : {self.total_bytes / 1e6:.2f} MB",
            f"sim time held: {self.sim_seconds:.1f}s of simulation",
        ]
        if self.tmp_files:
            lines.append(
                f"stranded tmp : {self.tmp_files} files "
                f"({self.tmp_bytes / 1e6:.2f} MB; `cache clear` reclaims)")
        for scheme in sorted(self.by_scheme):
            lines.append(f"  {scheme:<10} {self.by_scheme[scheme]} entries")
        if self.store is not None:
            lines.append(
                f"store        : {self.store.get('backend', '?')} "
                f"({self.store.get('dsn', '?')})")
            lines.append(
                f"  schema v{self.store.get('schema_version', '?')}  "
                f"results={self.store.get('results', 0)}  "
                f"artifacts={self.store.get('artifacts', 0)}  "
                f"ledger={self.store.get('ledger', 0)} rows")
        return "\n".join(lines)


class ResultCache:
    """Content-addressed pickle store; corrupt entries read as misses.

    ``store`` adds the shared database tier explicitly; by default it
    is resolved lazily from ``$REPRO_STORE_DSN`` on first use (``None``
    when unset — the zero-config path stays pure-filesystem and never
    imports :mod:`repro.store`).
    """

    def __init__(self, root=None, store=None):
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self._store = store
        self._store_resolved = store is not None

    # -- store tier ----------------------------------------------------

    @property
    def store(self):
        """The shared store tier, or ``None``.  A store that fails to
        open is disabled for the cache's lifetime (one failure, not one
        per job) and counted under ``store.errors``."""
        if not self._store_resolved:
            self._store_resolved = True
            dsn = os.environ.get(ENV_STORE_DSN)
            if dsn:
                try:
                    from repro.store import open_store

                    self._store = open_store(dsn)
                except Exception:
                    telemetry.count("store.errors", op="open")
                    self._store = None
        return self._store

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[CacheEntry]:
        entry = self._get_local(digest)
        if entry is not None:
            return entry
        store = self.store
        if store is None:
            return None
        try:
            rec = store.get_result(digest)
        except Exception:
            telemetry.count("store.errors", op="get")
            return None
        if rec is None:
            return None
        entry = CacheEntry(digest=digest, meta=rec.meta, elapsed=rec.elapsed,
                           created=rec.created, result=rec.result)
        # Backfill the filesystem tier so the next hit is file-speed.
        try:
            self._put_local(digest, rec.result, meta=rec.meta,
                            elapsed=rec.elapsed, created=rec.created)
            telemetry.count("store.cache.backfills")
        except Exception:
            telemetry.count("store.errors", op="backfill")
        return entry

    def _get_local(self, digest: str) -> Optional[CacheEntry]:
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != _ENTRY_FORMAT:
                raise ValueError("stale cache entry format")
            return CacheEntry(
                digest=digest,
                meta=payload.get("meta", {}),
                elapsed=payload.get("elapsed", 0.0),
                created=payload.get("created", 0.0),
                result=payload["result"],
            )
        except FileNotFoundError:
            return None
        except Exception:
            # Unreadable/corrupt entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, digest: str, result, *, meta: dict, elapsed: float) -> None:
        self._put_local(digest, result, meta=meta, elapsed=elapsed)
        store = self.store
        if store is not None:
            try:
                store.put_result(digest, result, meta=meta, elapsed=elapsed)
            except Exception:
                # The shared tier must never fail a computed job.
                telemetry.count("store.errors", op="put")

    def _put_local(self, digest: str, result, *, meta: dict, elapsed: float,
                   created: Optional[float] = None) -> None:
        path = self._path(digest)
        payload = {
            "format": _ENTRY_FORMAT,
            "digest": digest,
            "meta": meta,
            "elapsed": float(elapsed),
            "created": time.time() if created is None else float(created),
            "result": result,
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        # Atomic publish: the full entry is staged in a temp file in
        # the destination directory and renamed into place, so readers
        # only ever see complete entries.  Concurrent writers of the
        # same digest race benignly (identical deterministic content
        # either way), and a concurrent `clear()` (or an external
        # rmtree) sweeping the shard directory away between mkdir and
        # rename just costs one retry.
        for attempt in range(2):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                if attempt:
                    raise
                continue
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                self._unlink_quiet(tmp)
                if attempt:
                    raise
            except BaseException:
                self._unlink_quiet(tmp)
                raise

    @staticmethod
    def _unlink_quiet(tmp) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------

    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.pkl"))

    def _tmp_files(self) -> Iterator[Path]:
        """Staging files a crashed ``put`` can strand (the process died
        between ``mkstemp`` and ``os.replace``, or ``_unlink_quiet``
        itself lost a race) — dead bytes until ``clear`` reclaims them."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.tmp"))

    def iter_entries(self) -> Iterator[CacheEntry]:
        """Entry metadata (results included) for every readable file."""
        for path in self._entry_files():
            entry = self._get_local(path.stem)
            if entry is not None:
                yield entry

    def info(self) -> CacheInfo:
        info = CacheInfo(root=self.root)
        for path in self._entry_files():
            entry = self._get_local(path.stem)
            if entry is None:
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue  # entry cleared between glob and stat
            info.n_entries += 1
            info.total_bytes += size
            info.sim_seconds += entry.elapsed
            scheme = entry.meta.get("scheme", "?")
            info.by_scheme[scheme] = info.by_scheme.get(scheme, 0) + 1
        for tmp in self._tmp_files():
            try:
                size = tmp.stat().st_size
            except OSError:
                continue
            info.tmp_files += 1
            info.tmp_bytes += size
        store = self.store
        if store is not None:
            try:
                info.store = store.describe()
            except Exception:
                telemetry.count("store.errors", op="describe")
        return info

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed.

        Orphaned ``*.tmp`` staging files (crashed writers) are swept
        and counted too.  Safe to run while other processes are reading
        and writing: their in-progress ``put`` calls retry, their
        ``get`` calls miss.  The shared store tier is *not* touched —
        that is ``netsparse store gc``'s explicit job."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for tmp in self._tmp_files():
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        return removed
