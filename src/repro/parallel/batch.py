"""Batch planner: fuse compatible jobs into single-pass groups.

A sweep submits dozens of :class:`~repro.parallel.jobs.SimJob` records
that differ only along *profile-compatible* knob axes — Property-Cache
geometry (capacity / ways / line geometry / cache on-off), the RIG
batch size, and the kernel width ``k``.  Jobs in such a group share
their partition trace and every batch-mode memo the cluster model keeps
(:mod:`repro.cluster.model`): filter anchors, merged rack streams,
reuse-distance profiles (:mod:`repro.core.reusedist`), scored hit
masks and whole-simulation templates.  Evaluating the group's members
*consecutively in one process* is therefore a single pass over the
trace plus one cheap scoring step per knob point — the planner's whole
job is to guarantee that adjacency.

:func:`plan_batches` groups jobs by their **residual key**: the job's
canonical identity (:meth:`SimJob.key_dict`) with the batchable axes
deleted.  Jobs whose residual keys match land in one
:class:`BatchPlan` group; axes the profile machinery cannot fold —
concatenation-delay sweeps, unit counts, topology, fault plans —
stay in the residual key, so such jobs transparently fall back to
per-job evaluation (a group of one).  Grouping never changes results:
every job still executes through :func:`timed_execute`, and the
memos it may hit are bit-exact by construction (golden-tested in
``tests/test_reusedist.py`` / ``tests/test_batch_planner.py``).

The engine (:meth:`ExecutionEngine._execute`) consults the planner
whenever ``REPRO_BATCH`` is enabled: groups become the unit of fan-out
(one worker evaluates a whole group so its members share the worker's
memos), folded jobs are attributed ``source="batched"`` in the run
ledger, and ``perf.batch.*`` telemetry reports groups formed, jobs
folded and profile build/score seconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.batchmode import batch_enabled
from repro.parallel.jobs import SimJob, timed_execute

__all__ = ["BatchPlan", "batch_enabled", "execute_group", "group_key",
           "plan_batches"]

#: Top-level ``key_dict`` axes a group may vary along.
_JOB_AXES = ("k", "rig_batch")

#: ``config`` axes a group may vary along (the pcache knob grid).
_CONFIG_AXES = ("pcache_bytes", "pcache_ways", "pcache_segments",
                "pcache_min_line")

#: ``features`` axes a group may vary along (cache on/off points of the
#: capacity sweeps).
_FEATURE_AXES = ("property_cache",)


def group_key(job: SimJob) -> str:
    """The job's residual identity: everything that must coincide for
    two jobs to share a fused single-pass group.

    Starts from the canonical :meth:`SimJob.key_dict` and deletes the
    batchable axes, so any *new* job field or config knob is
    conservatively part of the residual key until explicitly declared
    batchable — unknown axes can only split groups, never corrupt one.
    """
    kd = job.key_dict()
    for axis in _JOB_AXES:
        kd.pop(axis, None)
    cfg = dict(kd.get("config") or {})
    for axis in _CONFIG_AXES:
        cfg.pop(axis, None)
    feats = dict(cfg.get("features") or {})
    for axis in _FEATURE_AXES:
        feats.pop(axis, None)
    cfg["features"] = feats
    kd["config"] = cfg
    return json.dumps(kd, sort_keys=True, separators=(",", ":"))


@dataclass
class BatchPlan:
    """The planner's output: jobs fused into evaluation groups.

    ``groups`` holds every submitted job exactly once; groups appear in
    first-submission order and members keep their submission order, so
    serial evaluation of the plan visits jobs in a deterministic,
    reproducible sequence.
    """

    groups: List[List[SimJob]]

    @property
    def n_jobs(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_folded(self) -> int:
        """Jobs that ride along in a multi-job group (beyond each
        group's first member) — the sweep points evaluated by scoring
        instead of an independent full pass."""
        return sum(len(g) - 1 for g in self.groups if len(g) > 1)

    def describe(self) -> dict:
        """JSON-ready summary for telemetry and the bench block."""
        return {
            "jobs": self.n_jobs,
            "groups": self.n_groups,
            "folded": self.n_folded,
            "group_sizes": [len(g) for g in self.groups],
        }


def plan_batches(jobs: Sequence[SimJob]) -> BatchPlan:
    """Group ``jobs`` by residual key (see :func:`group_key`)."""
    groups: Dict[str, List[SimJob]] = {}
    order: List[str] = []
    for job in jobs:
        key = group_key(job)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [job]
            order.append(key)
        else:
            bucket.append(job)
    return BatchPlan(groups=[groups[key] for key in order])


def execute_group(jobs: Sequence[SimJob]) -> List[Tuple[object, float]]:
    """Evaluate one fused group; returns ``(result, elapsed)`` pairs in
    member order.

    Module-level and import-light so a process pool can map it: the
    worker that receives a group runs its members back-to-back, which
    is exactly what lets the cluster model's batch memos fold the
    shared stages.  Bit-identical to mapping :func:`timed_execute` over
    the members individually.
    """
    return [timed_execute(job) for job in jobs]
