"""Quickstart: compare NetSparse against the software baselines.

Simulates one SpMM iteration's communication on the paper's 128-node
leaf-spine cluster for a web-crawl matrix and prints the headline
numbers: how much faster NetSparse finishes than the idealized
sparsity-unaware (SUOpt) and sparsity-aware (SAOpt) software schemes,
and what each NetSparse mechanism contributed.

Run:  python examples/quickstart.py
"""

from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.config import NetSparseConfig
from repro.sparse.suite import BENCHMARKS, load_benchmark, scale_factor


def main():
    name, k = "arabic", 16
    config = NetSparseConfig()                # Table 5 defaults: 128 nodes
    topology = build_cluster_topology(config)  # 8 racks x 16, leaf-spine

    matrix = load_benchmark(name, scale="small")
    scale = scale_factor(name, matrix)        # downscaling vs the real matrix
    print(f"matrix {name}: {matrix.n_rows:,} rows, {matrix.nnz:,} nonzeros "
          f"(scale {scale:.2e} of arabic-2005), K={k}\n")

    netsparse = simulate_netsparse(
        matrix, k, config, topology,
        rig_batch=BENCHMARKS[name].default_rig_batch, scale=scale,
    )
    saopt = simulate_saopt(matrix, k, config, scale=scale)
    suopt = simulate_suopt(matrix, k, config)

    print(f"{'scheme':12s} {'comm time':>12s} {'speedup':>9s}")
    for res in (suopt, saopt, netsparse):
        speedup = suopt.total_time / res.total_time
        print(f"{res.scheme:12s} {res.total_time * 1e6:9.1f} us "
              f"{speedup:8.1f}x")

    print("\nNetSparse mechanism statistics (tail node):")
    print(f"  PRs filtered + coalesced : {netsparse.fc_rate:6.1%} "
          f"of {netsparse.n_pr_candidates:,} candidates")
    print(f"  avg PRs per packet       : {netsparse.avg_prs_per_packet:6.1f}")
    print(f"  property-cache hit rate  : {netsparse.cache_hit_rate:6.1%}")
    print(f"  goodput / line util      : {netsparse.goodput():6.1%} / "
          f"{netsparse.line_utilization():6.1%}")
    tail = netsparse.tail_node
    reduction = suopt.recv_wire_bytes[tail] / netsparse.tail_traffic_bytes()
    print(f"  traffic vs SUOpt         : {reduction:6.0f}x less")


if __name__ == "__main__":
    main()
