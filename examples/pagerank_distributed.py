"""Distributed PageRank over the NetSparse communication layer.

The paper motivates NetSparse with graph analytics (PageRank is cited
directly).  This example runs real PageRank iterations on a synthetic
web crawl using :func:`repro.cluster.distributed_spmv`: each
iteration's SpMV pulls remote rank values through the same
filter/coalesce decisions the hardware makes, so the numerics exercise
the core correctness invariant (elimination never loses a property),
while the cluster model reports what each iteration costs on the wire.

Run:  python examples/pagerank_distributed.py
"""

import numpy as np

from repro.cluster import distributed_spmv, simulate_netsparse
from repro.config import NetSparseConfig
from repro.network import LeafSpine
from repro.sparse import COOMatrix, spmv
from repro.sparse.suite import load_benchmark, scale_factor

DAMPING = 0.85
N_ITERATIONS = 5


def main():
    matrix = load_benchmark("uk", scale="tiny").with_random_values(seed=0)
    n = matrix.n_rows
    n_nodes = 16
    config = NetSparseConfig(n_nodes=n_nodes, n_racks=4, nodes_per_rack=4)
    topology = LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2)

    # Column-normalize so the iteration is a proper PageRank operator.
    col_sums = np.maximum(matrix.col_degrees(), 1).astype(float)
    normalized = COOMatrix(
        n, n, matrix.rows, matrix.cols,
        np.ones(matrix.nnz) / col_sums[matrix.cols], "uk-norm",
    )
    sc = scale_factor("uk", matrix)

    rank = np.full(n, 1.0 / n)
    print(f"PageRank on {n:,} pages, {matrix.nnz:,} links, "
          f"{n_nodes} nodes\n")
    print(f"{'iter':>4s} {'delta':>10s} {'comm time':>11s} "
          f"{'PRs issued':>11s} {'F+C':>6s} {'$hit':>6s}")
    for it in range(N_ITERATIONS):
        comm = simulate_netsparse(normalized, 1, config, topology, scale=sc)
        run = distributed_spmv(normalized, rank, n_nodes, config)
        new_rank = (1 - DAMPING) / n + DAMPING * run.output
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        print(f"{it:4d} {delta:10.2e} {comm.total_time * 1e6:8.2f} us "
              f"{comm.n_prs_issued:11,} {comm.fc_rate:6.1%} "
              f"{comm.cache_hit_rate:6.1%}")

    # Cross-check the final vector against a single-node run.
    check = np.full(n, 1.0 / n)
    for _ in range(N_ITERATIONS):
        check = (1 - DAMPING) / n + DAMPING * spmv(normalized, check)
    np.testing.assert_allclose(rank, check, rtol=1e-10)
    top = np.argsort(rank)[-5:][::-1]
    print("\ndistributed result matches single-node reference")
    print(f"top pages by rank: {top.tolist()}")


if __name__ == "__main__":
    main()
