"""Design-space exploration for a custom workload.

How a hardware architect would use this library: bring your own sparse
matrix (here, a synthetic FEM problem), then sweep the NetSparse design
knobs — RIG Unit count, Property Cache size, concatenation delay — to
find the configuration that matters for *your* sparsity pattern before
committing silicon.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.config import NetSparseConfig
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.sparse.synthetic import banded_fem


def sweep(label, configs, matrix, k=16):
    print(f"\n-- {label} --")
    base_time = None
    for tag, cfg in configs:
        topo = build_cluster_topology(cfg)
        res = simulate_netsparse(matrix, k, cfg, topo, scale=1.0)
        base_time = base_time or res.total_time
        print(f"  {tag:>14s}: {res.total_time * 1e6:8.1f} us "
              f"({base_time / res.total_time:5.2f}x vs first)  "
              f"PR/pkt={res.avg_prs_per_packet:5.1f}  "
              f"$hit={res.cache_hit_rate:5.1%}")


def main():
    # Your workload: a 3D structural problem, 64k DoF, ~40 nnz/row.
    # The band is wider than one partition, so neighbouring nodes in a
    # rack share boundary properties — cacheable at the ToR.
    matrix = banded_fem(n=1 << 16, mean_degree=40, band=768, seed=1,
                        name="my-fem")
    print(f"workload: {matrix.n_rows:,} rows, {matrix.nnz:,} nonzeros")

    base = NetSparseConfig()

    sweep("RIG Unit count", [
        (f"{u} units", replace(base, n_rig_units=u))
        for u in (2, 8, 32, 64)
    ], matrix)

    sweep("Property Cache size", [
        ("no cache", base.with_features(property_cache=False)),
        ("8 MB", replace(base, pcache_bytes=8 << 20)),
        ("32 MB", replace(base, pcache_bytes=32 << 20)),
        ("128 MB", replace(base, pcache_bytes=128 << 20)),
    ], matrix)

    sweep("concat delay", [
        ("no concat", base.with_features(concat_nic=False,
                                         concat_switch=False)),
        ("125 cycles", replace(base, concat_delay_cycles_nic=125)),
        ("500 cycles", replace(base, concat_delay_cycles_nic=500)),
        ("5000 cycles", replace(base, concat_delay_cycles_nic=5000)),
    ], matrix)

    sweep("fabric topology", [
        ("leaf-spine", base),
        ("HyperX", replace(base, topology="hyperx")),
        ("Dragonfly", replace(base, topology="dragonfly")),
    ], matrix)


if __name__ == "__main__":
    main()
