"""Packet-level simulation with failure injection.

Drives the event-driven NetSparse cluster (DES RIG Units, NIC/switch
concatenators, middle-pipe Property Caches, backpressured links) on a
small fabric, then demonstrates the §7.1 reliability story: a link that
silently drops a packet, the RIG watchdog detecting the stuck
operation, the partial buffer being discarded, and the retry
completing the gather.

Run:  python examples/packet_level_sim.py
"""

from repro.core.reliability import RigWatchdog
from repro.core.rig import RigClientUnit, RigServerUnit
from repro.dessim import run_des_gather
from repro.partition import OneDPartition
from repro.sim import Simulator, Store
from repro.sparse.synthetic import web_crawl


def packet_level_cluster():
    matrix = web_crawl(n=2048, mean_degree=8, seed=5, block_size=256)
    print(f"matrix: {matrix.n_rows:,} rows, {matrix.nnz:,} nonzeros; "
          "cluster: 2 racks x 4 nodes, event-driven\n")

    result = run_des_gather(matrix, k=16, n_racks=2, nodes_per_rack=4)
    part = OneDPartition(matrix, 8)
    needed = sum(t.unique_remote_count() for t in part.node_traces())

    print(f"simulated finish time : {result.finish_time * 1e6:9.1f} us")
    print(f"candidate PRs dropped : {result.dropped_prs:,} "
          f"(filter/coalesce in the RIG Units)")
    print(f"PRs issued to the wire: {result.issued_prs:,} "
          f"(= {needed:,} needed properties + cross-unit escapes)")
    print(f"cache turnarounds     : {result.cache_turnarounds:,} "
          f"(answered at the ToR, never crossed the fabric)")
    print(f"PRs per fabric packet : {result.avg_prs_per_fabric_packet:.1f}")
    print(f"fabric traffic        : {result.fabric_bytes / 1024:.1f} KB vs "
          f"{result.host_up_bytes.sum() / 1024:.1f} KB injected at hosts")


def watchdog_demo():
    print("\n-- failure injection: a read PR vanishes in the fabric --")
    sim = Simulator()
    drops = {"armed": True}

    def lossy(item):
        if drops["armed"] and getattr(item, "idx", None) == 77:
            drops["armed"] = False
            print("  [fault] read PR for idx 77 dropped in flight")
            return True
        return False

    def wire(drop_fn=None):
        a, b = Store(sim), Store(sim)

        def fwd():
            while True:
                item = yield a.get()
                yield sim.timeout(1e-6)
                if drop_fn and drop_fn(item):
                    continue
                yield b.put(item)

        sim.process(fwd())
        return a, b

    c2s_in, c2s_out = wire(lossy)
    s2c_in, s2c_out = wire()
    client = RigClientUnit(sim, unit_id=0, node=0, tx_queue=c2s_in,
                           rx_queue=s2c_out, idx_filter=set())
    RigServerUnit(sim, unit_id=1, node=1, rx_queue=c2s_out,
                  tx_queue=s2c_in, payload_bytes=64)
    dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=2)
    op = dog.execute([42, 77, 99])
    sim.run()
    report = op.value
    print(f"  attempts={report.attempts}  watchdog timeouts="
          f"{report.timeouts}  properties discarded with the failed "
          f"buffer={report.discarded_properties}")
    print(f"  delivered after retry: {sorted(client.received_idxs)}")


if __name__ == "__main__":
    packet_level_cluster()
    watchdog_demo()
