"""GNN-style feature aggregation: property size sensitivity.

Graph neural networks aggregate neighbour embeddings — an SpMM whose
input properties are K-element feature vectors (the paper's intro
workload, K up to 256).  This example sweeps K for one aggregation
layer on a social-network-like graph and shows how the winning
communication scheme changes: SUOpt's redundant broadcast grows
linearly with K while NetSparse pays only for useful, deduplicated,
concatenated traffic.

Run:  python examples/gnn_feature_gather.py
"""

import numpy as np

from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.config import NetSparseConfig
from repro.sparse import spmm
from repro.sparse.suite import BENCHMARKS, load_benchmark, scale_factor


def main():
    name = "uk"
    matrix = load_benchmark(name, scale="small")
    config = NetSparseConfig()
    topology = build_cluster_topology(config)
    sc = scale_factor(name, matrix)
    batch = BENCHMARKS[name].default_rig_batch

    print(f"one GNN aggregation layer on {name}: {matrix.n_rows:,} vertices, "
          f"{matrix.nnz:,} edges, {config.n_nodes} nodes\n")
    print(f"{'K':>4s} {'feature B':>9s} {'SUOpt':>10s} {'SAOpt':>10s} "
          f"{'NetSparse':>10s} {'NS wins by':>10s}")
    for k in (1, 4, 16, 64, 128, 256):
        ns = simulate_netsparse(matrix, k, config, topology,
                                rig_batch=batch, scale=sc)
        sa = simulate_saopt(matrix, k, config, scale=sc)
        su = simulate_suopt(matrix, k, config)
        best_sw = min(sa.total_time, su.total_time)
        print(f"{k:4d} {4 * k:8d}B "
              f"{su.total_time * 1e6:7.1f} us "
              f"{sa.total_time * 1e6:7.1f} us "
              f"{ns.total_time * 1e6:7.1f} us "
              f"{best_sw / ns.total_time:9.1f}x")

    # Numerically verify a small aggregation end to end.
    tiny = load_benchmark(name, scale="tiny").with_random_values(seed=3)
    features = np.random.default_rng(4).normal(size=(tiny.n_cols, 16))
    aggregated = spmm(tiny, features)
    assert aggregated.shape == (tiny.n_rows, 16)
    print("\naggregation kernel verified against dense reference "
          f"(output {aggregated.shape[0]:,} x {aggregated.shape[1]})")


if __name__ == "__main__":
    main()
