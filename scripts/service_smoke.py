#!/usr/bin/env python
"""Service smoke: one server, many concurrent clients, hard assertions.

Starts a job server in-process, fires ``--clients`` worker threads at
it with *overlapping* sweeps (every client submits mostly the same
scheme/matrix/k grid), then asserts the service-level guarantees the
PR promises:

1. **Dedupe** — the engine executed each distinct job exactly once,
   proven from the ``service.*`` / engine telemetry, not inferred.
2. **Bit-identical transport** — every client's decoded result for a
   digest matches the direct in-process ``simulate()`` float for
   float, array for array.
3. **Lifecycle ordering** — each executed job's WebSocket stream is
   ``queued -> running -> spans -> done`` with dense sequence numbers.
4. **Graceful drain** — shutdown with work in flight completes that
   work before the server exits.

Writes a small latency report (p50/p95 per route, throughput,
coalesce rate) as JSON to ``--out`` for CI to upload.

Usage::

    python scripts/service_smoke.py --clients 8 --out service-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from repro.parallel import ExecutionEngine, ResultCache, engine_scope, simulate
from repro.service import ServiceClient, serve_in_background

SCHEMES = ("netsparse", "suopt")
MATRICES = ("arabic", "stokes")
KS = (4, 8, 16)


def _pct(samples, q):
    if not samples:
        return 0.0
    s = sorted(samples)
    pos = (len(s) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(s) - 1)
    return s[lo] + (s[hi] - s[lo]) * (pos - lo)


def _client(url, idx, out, errors):
    try:
        c = ServiceClient(url, timeout=120)
        ks = KS[idx % len(KS):] + KS[:idx % len(KS)]
        t0 = time.perf_counter()
        sweep = c.submit_sweep({
            "schemes": list(SCHEMES), "matrices": list(MATRICES),
            "ks": list(ks), "scale_name": "tiny",
        })
        out["submit_lat"].append(time.perf_counter() - t0)
        for st in sweep["jobs"]:
            t0 = time.perf_counter()
            res = c.wait(st.job_id, timeout=120)
            out["wait_lat"].append(time.perf_counter() - t0)
            comm = res.comm_result()
            out["results"].append(
                (res.digest, comm.total_time,
                 comm.per_node_time.tobytes(), st.job_id))
    except Exception as exc:
        errors.append((idx, repr(exc)))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--out", default="service-report.json")
    ap.add_argument("--cache-dir", default=None)
    args = ap.parse_args(argv)
    if args.clients < 8:
        print(f"[smoke] WARNING: {args.clients} clients is below the "
              "acceptance floor of 8", file=sys.stderr)

    import tempfile

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="svc-smoke-")
    eng = ExecutionEngine(jobs=2, cache=ResultCache(cache_dir))
    bg = serve_in_background(eng, queue_limit=256)
    print(f"[smoke] server on {bg.url}, {args.clients} clients, "
          f"grid={len(SCHEMES)}x{len(MATRICES)}x{len(KS)}")

    failures = []
    out = {"submit_lat": [], "wait_lat": [], "results": []}
    errors: list = []
    t0 = time.perf_counter()
    threads = [threading.Thread(target=_client,
                                args=(bg.url, i, out, errors))
               for i in range(args.clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
        if t.is_alive():
            failures.append("client thread hung")
    elapsed = time.perf_counter() - t0
    if errors:
        failures.append(f"client errors: {errors}")

    client = ServiceClient(bg.url)
    stats = client.stats()
    counters = stats["service"]["counters"]
    executed = stats["engine"]["stats"]["executed"]
    n_distinct = len(SCHEMES) * len(MATRICES) * len(KS)

    # 1. Dedupe, proven via telemetry.
    coalesced = counters.get("service.coalesced", 0)
    cache_hits = counters.get("service.cache_hits", 0)
    submitted = counters.get("service.submitted", 0)
    if executed != n_distinct:
        failures.append(
            f"dedupe broken: engine executed {executed} != "
            f"{n_distinct} distinct jobs")
    if coalesced + cache_hits == 0:
        failures.append("no coalescing observed across overlapping sweeps")
    print(f"[smoke] submissions={submitted + coalesced} "
          f"coalesced={coalesced} cache-hits={cache_hits} "
          f"executed={executed}")

    # 2. Bit-identical results vs the direct in-process path.
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        direct = {}
        for scheme in SCHEMES:
            for matrix in MATRICES:
                for k in KS:
                    res = simulate(scheme, matrix, k=k, scale_name="tiny")
                    direct[(scheme, matrix, k)] = (
                        res.total_time, res.per_node_time.tobytes())
    direct_by_bits = {v for v in direct.values()}
    seen_digests = set()
    for digest, total_time, per_node_bytes, _job in out["results"]:
        seen_digests.add(digest)
        if (total_time, per_node_bytes) not in direct_by_bits:
            failures.append(
                f"result for {digest[:12]} not bit-identical to direct "
                f"simulate() (total_time={total_time!r})")
            break
    if len(seen_digests) != n_distinct and not errors:
        failures.append(
            f"clients saw {len(seen_digests)} digests, "
            f"expected {n_distinct}")

    # 3. WebSocket lifecycle ordering on every executed job.
    checked = 0
    for st in client.jobs():
        if st.source != "executed":
            continue
        events = list(client.events(st.job_id))
        states = [e["state"] for e in events if e["type"] == "status"]
        seqs = [e["seq"] for e in events]
        if states != ["queued", "running", "done"]:
            failures.append(f"{st.job_id}: bad lifecycle {states}")
        if seqs != list(range(len(events))):
            failures.append(f"{st.job_id}: non-dense seq {seqs}")
        span_names = [e["name"] for e in events if e["type"] == "span"]
        if not span_names:
            failures.append(f"{st.job_id}: no spans streamed")
        # Only the NetSparse cluster model emits per-stage spans; the
        # baselines record their own (sim.*, engine.job).
        if (st.describe.get("scheme") == "netsparse"
                and not any(n.startswith("cluster.stage.")
                            for n in span_names)):
            failures.append(f"{st.job_id}: no per-stage spans streamed")
        checked += 1
    print(f"[smoke] websocket lifecycle verified on {checked} "
          f"executed jobs")

    # 4. Graceful drain with work in flight.
    slow_digest_req = {"scheme": "hybrid", "matrix": "uk", "k": 16,
                       "scale_name": "tiny"}
    drained = client.submit(slow_digest_req)
    bg.stop()           # drain=True: must finish the in-flight job
    from repro.service.protocol import JobRequest

    digest = JobRequest.from_dict(slow_digest_req).to_sim_job().digest()
    if eng.cache.get(digest) is None:
        failures.append("graceful drain lost an in-flight job "
                        f"({drained.job_id})")
    else:
        print(f"[smoke] drain completed in-flight job {drained.job_id}")
    eng.close()

    report = {
        "clients": args.clients,
        "distinct_jobs": n_distinct,
        "submissions": submitted + coalesced,
        "coalesced": coalesced,
        "cache_hits": cache_hits,
        "executed": executed,
        "coalesce_rate": round(
            (coalesced + cache_hits) / max(submitted + coalesced, 1), 4),
        "wall_s": round(elapsed, 3),
        "requests": counters.get("service.requests", 0),
        "throughput_rps": round(
            counters.get("service.requests", 0) / elapsed, 1),
        "submit_p50_ms": round(_pct(out["submit_lat"], 50) * 1e3, 2),
        "submit_p95_ms": round(_pct(out["submit_lat"], 95) * 1e3, 2),
        "wait_p50_ms": round(_pct(out["wait_lat"], 50) * 1e3, 2),
        "wait_p95_ms": round(_pct(out["wait_lat"], 95) * 1e3, 2),
        "ws_checked_jobs": checked,
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[smoke] wrote {args.out}")
    if failures:
        for f in failures:
            print(f"[smoke] FAIL: {f}", file=sys.stderr)
        return 1
    print(f"[smoke] OK: {args.clients} clients, "
          f"{report['submissions']} submissions -> {executed} executions, "
          f"coalesce rate {report['coalesce_rate']:.0%}, "
          f"submit p95 {report['submit_p95_ms']}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
