#!/usr/bin/env python3
"""Compare the two most recent ``BENCH_*.json`` perf snapshots.

The benchmark session (``benchmarks/conftest.py``) appends one
machine-readable snapshot per run; this script diffs the newest against
the previous one, prints a per-test wall-time table, and flags
regressions above a threshold (default 20%).

Intended uses:

- CI (non-blocking): collects snapshots from the checkout *and* the
  fresh ``bench-artifacts/`` output, emitting GitHub ``::warning``
  annotations for regressions while always exiting 0 unless
  ``--strict`` is given.
- Locally: ``python scripts/bench_compare.py`` after a benchmark run
  shows what this change did to the perf trajectory.
- Against the result store: ``--from-store <dsn>`` (or the value of
  ``$REPRO_STORE_DSN``) diffs the two newest ``bench``-kind artifacts
  the benchmark session uploaded, so machines that never share a
  filesystem can still compare trajectories.

Wall time is compared per test; the session-wide peak RSS (the
``memory.peak_rss_mb`` block written since the sharded-trace work) is
compared per snapshot under its own, looser threshold — memory is
noisier than wall time, but a paper-scale sweep that silently doubles
its resident set is exactly the regression the shard/spill tier exists
to prevent.  Tests present in one snapshot but not the other are
reported informationally.  Snapshots at different
``REPRO_BENCH_SCALE`` settings are never compared (neither walls nor
peak RSS are commensurable across scales).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.20
DEFAULT_MEM_THRESHOLD = 0.25


def collect_snapshots(locations: List[str]) -> List[str]:
    """All BENCH_*.json files under the given files/directories."""
    paths = []
    for loc in locations:
        if os.path.isdir(loc):
            paths.extend(glob.glob(os.path.join(loc, "BENCH_*.json")))
        elif os.path.isfile(loc):
            paths.append(loc)
    # De-duplicate, then order oldest -> newest.  The snapshot's own
    # timestamp outranks mtime (checkouts reset mtimes).
    uniq = sorted(set(os.path.abspath(p) for p in paths))

    def sort_key(path: str) -> Tuple[str, float]:
        try:
            with open(path) as fh:
                stamp = json.load(fh).get("timestamp", "")
        except (OSError, json.JSONDecodeError):
            stamp = ""
        return (stamp, os.path.getmtime(path))

    return sorted(uniq, key=sort_key)


def load_walls(path: str) -> Tuple[dict, Dict[str, float]]:
    with open(path) as fh:
        data = json.load(fh)
    walls = {
        rec["test"]: float(rec["wall_s"])
        for rec in data.get("results", [])
        if "test" in rec and "wall_s" in rec
    }
    return data, walls


def short_name(test: str) -> str:
    return test.split("::")[-1]


def compare_memory(base_meta: dict, new_meta: dict, threshold: float,
                   annotate: bool) -> List[str]:
    """Diff session-wide peak RSS; returns ["memory"] on regression.

    Old snapshots predate the ``memory`` block — a missing side just
    skips the comparison instead of failing it.
    """
    base_mb = (base_meta.get("memory") or {}).get("peak_rss_mb")
    new_mb = (new_meta.get("memory") or {}).get("peak_rss_mb")
    if not base_mb or not new_mb:
        print("peak RSS: not recorded on both sides -- skipping")
        return []
    delta = (new_mb - base_mb) / base_mb
    marker = ""
    if delta > threshold:
        marker = "  << MEMORY REGRESSION"
        if annotate:
            print(f"::warning title=bench memory regression::peak RSS "
                  f"{base_mb:.0f}MiB -> {new_mb:.0f}MiB (+{delta:.0%})")
    elif delta < -threshold:
        marker = "  (improved)"
    print(f"peak RSS: {base_mb:.0f}MiB -> {new_mb:.0f}MiB "
          f"({delta:+.0%}){marker}")
    return ["memory"] if delta > threshold else []


def compare_batch(base_meta: dict, new_meta: dict, threshold: float,
                  annotate: bool) -> List[str]:
    """Diff the A/B ``batch`` block's per-row speedups.

    A row regresses when its batch-mode speedup falls by more than
    ``threshold`` relative to the baseline snapshot, or when batch
    mode stopped being bit-identical (which is never acceptable).
    Snapshots without the block (pre-planner, or a bench selection
    that skipped it) skip the comparison.
    """
    base_rows = (base_meta.get("batch") or {}).get("rows") or {}
    new_rows = (new_meta.get("batch") or {}).get("rows") or {}
    shared = sorted(set(base_rows) & set(new_rows))
    if not shared:
        print("batch block: not recorded on both sides -- skipping")
        return []
    regressions = []
    print(f"{'batch row':<12}  {'base x':>7}  {'new x':>7}")
    for exp in shared:
        b = float(base_rows[exp].get("speedup", 0.0))
        n = float(new_rows[exp].get("speedup", 0.0))
        marker = ""
        if not new_rows[exp].get("identical", True):
            marker = "  << NOT BIT-IDENTICAL"
            regressions.append(f"batch:{exp}")
            if annotate:
                print(f"::warning title=batch parity broken::{exp} "
                      f"batch mode is no longer bit-identical")
        elif b > 0 and (b - n) / b > threshold:
            marker = "  << BATCH REGRESSION"
            regressions.append(f"batch:{exp}")
            if annotate:
                print(f"::warning title=batch speedup regression::{exp} "
                      f"{b:.2f}x -> {n:.2f}x")
        elif b > 0 and (n - b) / b > threshold:
            marker = "  (improved)"
        print(f"{exp:<12}  {b:>6.2f}x  {n:>6.2f}x{marker}")
    return regressions


def compare(base_path: str, new_path: str, threshold: float,
            annotate: bool,
            mem_threshold: float = DEFAULT_MEM_THRESHOLD) -> List[str]:
    """Print the diff table; return the list of regressed test names."""
    base_meta, base = load_walls(base_path)
    new_meta, new = load_walls(new_path)
    print(f"base: {base_path}  ({base_meta.get('timestamp', '?')}, "
          f"scale={base_meta.get('scale', '?')})")
    print(f"new:  {new_path}  ({new_meta.get('timestamp', '?')}, "
          f"scale={new_meta.get('scale', '?')})")
    if base_meta.get("scale") != new_meta.get("scale"):
        print("scales differ -- refusing to compare wall times")
        return []

    regressions = []
    shared = sorted(set(base) & set(new))
    if not shared:
        print("no tests in common")
        return (compare_memory(base_meta, new_meta, mem_threshold, annotate)
                + compare_batch(base_meta, new_meta, threshold, annotate))
    width = max(len(short_name(t)) for t in shared)
    print(f"{'test':<{width}}  {'base s':>8}  {'new s':>8}  {'delta':>7}")
    for test in shared:
        b, n = base[test], new[test]
        delta = (n - b) / b if b > 0 else 0.0
        marker = ""
        if b > 0 and delta > threshold:
            marker = "  << REGRESSION"
            regressions.append(test)
            if annotate:
                print(f"::warning title=bench regression::{test} "
                      f"wall {b:.2f}s -> {n:.2f}s (+{delta:.0%})")
        elif b > 0 and delta < -threshold:
            marker = "  (improved)"
        print(f"{short_name(test):<{width}}  {b:>8.3f}  {n:>8.3f}  "
              f"{delta:>+6.0%}{marker}")
    for test in sorted(set(new) - set(base)):
        print(f"{short_name(test):<{width}}  {'-':>8}  "
              f"{new[test]:>8.3f}     new")
    for test in sorted(set(base) - set(new)):
        print(f"{short_name(test):<{width}}  {base[test]:>8.3f}  "
              f"{'-':>8}     gone")
    regressions += compare_memory(base_meta, new_meta, mem_threshold,
                                  annotate)
    regressions += compare_batch(base_meta, new_meta, threshold, annotate)
    return regressions


def snapshots_from_store(dsn: str) -> List[str]:
    """Materialize the two newest ``bench`` artifacts as temp files.

    Returns their paths oldest-first (the order ``compare`` expects),
    or fewer than two when the store holds no baseline yet.
    """
    import tempfile

    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.store import open_store

    store = open_store(dsn)
    artifacts = store.latest_artifacts("bench", limit=2)
    paths = []
    for art in reversed(artifacts):  # newest-first -> oldest-first
        fd, path = tempfile.mkstemp(
            prefix="BENCH_store_", suffix=".json")
        with os.fdopen(fd, "wb") as fh:
            fh.write(art["content"])
        print(f"fetched {art['name']} ({art['sha256'][:12]}) -> {path}")
        paths.append(path)
    return paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff the two most recent BENCH_*.json snapshots"
    )
    parser.add_argument(
        "locations", nargs="*", default=None, metavar="PATH",
        help="files or directories to search (default: repo root "
             "and bench-artifacts/)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative wall-time increase flagged as a regression "
             "(default 0.20)",
    )
    parser.add_argument(
        "--mem-threshold", type=float, default=DEFAULT_MEM_THRESHOLD,
        help="relative session peak-RSS increase flagged as a memory "
             "regression (default 0.25)",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit ::warning annotations for regressions",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 when regressions are found (default: always 0, "
             "for non-blocking CI)",
    )
    parser.add_argument(
        "--from-store", nargs="?", const="", default=None, metavar="DSN",
        help="diff the two newest 'bench' artifacts from the result "
             "store instead of local files (DSN defaults to "
             "$REPRO_STORE_DSN)",
    )
    args = parser.parse_args(argv)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.from_store is not None:
        dsn = args.from_store or os.environ.get("REPRO_STORE_DSN")
        if not dsn:
            print("--from-store needs a DSN argument or $REPRO_STORE_DSN",
                  file=sys.stderr)
            return 2
        locations = [f"store:{dsn}"]
        snapshots = snapshots_from_store(dsn)
    else:
        locations = args.locations or [root,
                                       os.path.join(root, "bench-artifacts")]
        snapshots = collect_snapshots(locations)
    if len(snapshots) < 2:
        # First run of a fresh checkout (or a cleared artifacts dir):
        # there is no baseline yet, which is a normal state, not an
        # error — succeed quietly so CI stays green, and leave a
        # ::notice so the run explains itself.
        what = ("no benchmark snapshots" if not snapshots
                else f"only one snapshot ({snapshots[0]})")
        msg = (f"{what} under {locations}; no baseline to compare "
               "against -- skipping (the next run will diff against "
               "this one)")
        print(msg)
        if args.github:
            print(f"::notice title=bench compare::no baseline: {msg}")
        return 0
    regressions = compare(snapshots[-2], snapshots[-1], args.threshold,
                          annotate=args.github,
                          mem_threshold=args.mem_threshold)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1 if args.strict else 0
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
