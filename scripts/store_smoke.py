#!/usr/bin/env python
"""Store smoke: migrations, cross-process reuse, cross-replica dedupe.

Exercises the ``repro.store`` guarantees end to end against a real
SQLite database file, with hard assertions:

1. **Idempotent migrations** — a second ``migrate()`` applies nothing.
2. **Cross-engine reuse** — engine A (fresh local cache) executes a
   sweep; engine B (different fresh local cache, same store) re-runs it
   with **zero** executions and bit-identical results, served through
   the store tier.
3. **Cross-replica coalescing** — a second service replica (its own
   filesystem cache, same store DSN) answers the duplicate sweep
   entirely from the shared store; the ledger ends with exactly one
   ``executed`` row per digest.
4. **Provenance** — every stored row carries code salt, kernel tier,
   git sha, and schema version.

Writes the full ledger history as JSON to ``--out`` for CI to upload.

Usage::

    python scripts/store_smoke.py --out store-history.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

SCHEMES = ("netsparse", "suopt")
MATRICES = ("arabic", "stokes")
KS = (4, 8)


def _sweep_jobs():
    from repro.config import NetSparseConfig
    from repro.parallel import SimJob

    cfg = NetSparseConfig()
    return [SimJob(scheme=s, matrix=m, k=k, config=cfg, scale_name="tiny")
            for s in SCHEMES for m in MATRICES for k in KS]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="store-history.json")
    ap.add_argument("--dsn", default=None,
                    help="store DSN (default: sqlite file in a tempdir)")
    args = ap.parse_args(argv)

    from repro.parallel import ExecutionEngine, ResultCache
    from repro.service import ServiceClient, serve_in_background
    from repro.store import open_store

    work = tempfile.mkdtemp(prefix="store-smoke-")
    dsn = args.dsn or f"sqlite:///{work}/store.sqlite3"
    os.environ["REPRO_STORE_DSN"] = dsn
    failures = []

    # 1. Idempotent migrations.
    store = open_store(dsn, migrate=False)
    first = store.migrate()
    second = store.migrate()
    if not first:
        failures.append("first migrate() applied nothing")
    if second:
        failures.append(f"second migrate() re-applied {second}: "
                        "migrations are not idempotent")
    print(f"[smoke] migrate: first={first} second={second} "
          f"(schema v{store.schema_version()})")

    jobs = _sweep_jobs()
    digests = [j.digest() for j in jobs]

    # 2. Cross-engine reuse through the store tier.
    eng_a = ExecutionEngine(jobs=2,
                            cache=ResultCache(os.path.join(work, "fs-a")))
    eng_a.context["experiment"] = "smoke-a"
    t0 = time.perf_counter()
    res_a = eng_a.run_jobs(jobs)
    print(f"[smoke] engine A executed {eng_a.stats.executed} jobs "
          f"in {time.perf_counter() - t0:.1f}s")
    eng_a.close()

    eng_b = ExecutionEngine(jobs=2,
                            cache=ResultCache(os.path.join(work, "fs-b")))
    eng_b.context["experiment"] = "smoke-b"
    res_b = eng_b.run_jobs(jobs)
    if eng_b.stats.executed != 0:
        failures.append(f"engine B executed {eng_b.stats.executed} jobs; "
                        "expected 0 (store tier should serve all)")
    for ra, rb in zip(res_a, res_b):
        if ra.total_time != rb.total_time or not (
                ra.per_node_time.tobytes() == rb.per_node_time.tobytes()):
            failures.append("store round-trip not bit-identical "
                            f"({ra.scheme}/{ra.matrix_name})")
            break
    print(f"[smoke] engine B: {eng_b.stats.executed} executions, "
          f"{len(res_b)} results bit-checked")
    eng_b.close()

    # 3. Cross-replica coalescing: a fresh service replica with its own
    # filesystem cache must answer the duplicate sweep from the store.
    eng_c = ExecutionEngine(jobs=2,
                            cache=ResultCache(os.path.join(work, "fs-c")))
    bg = serve_in_background(eng_c)
    try:
        client = ServiceClient(bg.url, timeout=120)
        sweep = client.submit_sweep({
            "schemes": list(SCHEMES), "matrices": list(MATRICES),
            "ks": list(KS), "scale_name": "tiny",
        })
        sources = {}
        for st in sweep["jobs"]:
            res = client.wait(st.job_id, timeout=120)
            status = client.status(st.job_id)
            sources[res.digest] = status.source
        bad = {d: s for d, s in sources.items() if s != "cache"}
        if bad:
            failures.append(f"replica served duplicates from {bad}; "
                            "expected source 'cache' for all")
        if eng_c.stats.executed != 0:
            failures.append(f"replica executed {eng_c.stats.executed} "
                            "duplicate jobs")
        print(f"[smoke] replica served {len(sources)} duplicates, "
              f"sources={sorted(set(sources.values()))}")
    finally:
        bg.stop()
        eng_c.close()

    # Exactly one 'executed' ledger row per digest, ever.
    for digest in digests:
        rows = store.history(digest=digest, source="executed")
        if len(rows) != 1:
            failures.append(f"digest {digest[:12]}: "
                            f"{len(rows)} executed ledger rows, expected 1")

    # 4. Provenance on every stored result.
    for digest in digests:
        rec = store.get_result(digest)
        if rec is None:
            failures.append(f"digest {digest[:12]} missing from store")
            continue
        missing = [f for f in ("code_salt", "kernel_tier", "git_sha",
                               "schema_version")
                   if not rec.provenance.get(f)]
        if missing:
            failures.append(f"digest {digest[:12]}: "
                            f"incomplete provenance {missing}")

    history = store.history()
    info = store.describe()
    with open(args.out, "w") as fh:
        json.dump({"info": {k: v for k, v in info.items()
                            if k != "dsn"},
                   "history": history, "failures": failures},
                  fh, indent=2, default=str)
        fh.write("\n")
    print(f"[smoke] wrote {args.out} ({len(history)} ledger rows)")

    if failures:
        for f in failures:
            print(f"[smoke] FAIL: {f}", file=sys.stderr)
        return 1
    by_source = {}
    for row in history:
        by_source[row["source"]] = by_source.get(row["source"], 0) + 1
    print(f"[smoke] OK: {info['results']} results, "
          f"{info['ledger']} ledger rows {by_source}, "
          f"one execution per digest across 2 engines + 1 replica")
    return 0


if __name__ == "__main__":
    sys.exit(main())
