"""Service benchmark: N concurrent clients against one job server.

Eight client threads fire overlapping sweeps at a background
:class:`~repro.service.server.JobServer` (real sockets, real
WebSocket-capable HTTP), so most submissions land on digests some
other client already has in flight or cached.  The point under test is
the service layer itself — admission, coalescing, cache serving,
result transport — so the block records request latencies (p50/p95),
sustained throughput, and the coalesce rate into ``BENCH_<date>.json``
under a top-level ``"service"`` key.

Deduplication is asserted, not just measured: the engine must execute
each distinct job exactly once no matter how many clients ask for it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel import ExecutionEngine, ResultCache
from repro.service import ServiceClient, serve_in_background

from conftest import record_block, run_once

N_CLIENTS = 8
#: Per-client sweep: overlapping slices of one scheme/matrix/k grid.
SCHEMES = ("netsparse", "suopt")
MATRICES = ("arabic", "stokes")
KS = (4, 8, 16)


def _client_worker(url: str, idx: int, latencies, results, errors):
    """One client: submit an overlapping sweep, wait for every job,
    fetch every result."""
    try:
        c = ServiceClient(url, timeout=120)
        # Rotate the grid so clients disagree on submission order but
        # overlap almost entirely on content.
        ks = KS[idx % len(KS):] + KS[:idx % len(KS)]
        t0 = time.perf_counter()
        sweep = c.submit_sweep({
            "schemes": list(SCHEMES), "matrices": list(MATRICES),
            "ks": list(ks), "scale_name": "tiny",
        })
        latencies.append(("submit", time.perf_counter() - t0))
        for st in sweep["jobs"]:
            t0 = time.perf_counter()
            res = c.wait(st.job_id, timeout=120)
            latencies.append(("wait", time.perf_counter() - t0))
            key = (res.digest,)
            results.append((key, res.comm_result().total_time))
    except Exception as exc:  # pragma: no cover - surfaced by assert
        errors.append(exc)


def _run_service_bench(tmp_root) -> dict:
    eng = ExecutionEngine(jobs=2, cache=ResultCache(tmp_root))
    bg = serve_in_background(eng, queue_limit=256)
    latencies, results, errors = [], [], []
    t0 = time.perf_counter()
    try:
        threads = [
            threading.Thread(target=_client_worker,
                             args=(bg.url, i, latencies, results, errors))
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(300)
            assert not t.is_alive(), "client thread hung"
        elapsed = time.perf_counter() - t0
        stats = ServiceClient(bg.url).stats()
    finally:
        bg.stop()
        eng.close()
    assert errors == [], errors

    counters = stats["service"]["counters"]
    n_jobs = len(SCHEMES) * len(MATRICES) * len(KS)
    submitted = counters.get("service.submitted", 0)
    coalesced = counters.get("service.coalesced", 0)
    cache_hits = counters.get("service.cache_hits", 0)
    executed = stats["engine"]["stats"]["executed"]

    # Hard dedupe guarantee: each distinct job ran exactly once.
    assert executed == n_jobs, (executed, n_jobs)
    assert coalesced + cache_hits > 0, "clients never overlapped"
    # Bit-stability across transports: every client that fetched a
    # digest saw the identical float.
    by_digest = {}
    for key, total_time in results:
        by_digest.setdefault(key, set()).add(total_time)
    assert all(len(v) == 1 for v in by_digest.values()), by_digest

    def _pct(samples, q):
        if not samples:
            return 0.0
        s = sorted(samples)
        pos = (len(s) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    submit_lat = [v for k, v in latencies if k == "submit"]
    wait_lat = [v for k, v in latencies if k == "wait"]
    n_requests = counters.get("service.requests", 0)
    return {
        "n_clients": N_CLIENTS,
        "n_distinct_jobs": n_jobs,
        "submitted": submitted,
        "coalesced": coalesced,
        "cache_hits": cache_hits,
        "executed": executed,
        # Of all submissions (new records + coalesced joins), the
        # fraction answered without a new execution.
        "coalesce_rate": round(
            (coalesced + cache_hits) / max(submitted + coalesced, 1), 4),
        "wall_s": round(elapsed, 3),
        "requests": n_requests,
        "throughput_rps": round(n_requests / elapsed, 1),
        "submit_p50_ms": round(_pct(submit_lat, 50) * 1e3, 2),
        "submit_p95_ms": round(_pct(submit_lat, 95) * 1e3, 2),
        "wait_p50_ms": round(_pct(wait_lat, 50) * 1e3, 2),
        "wait_p95_ms": round(_pct(wait_lat, 95) * 1e3, 2),
    }


def test_bench_service(benchmark, scale, tmp_path):
    if scale in ("large", "paper"):
        pytest.skip("service bench is scale-free; tiny jobs only")
    block = run_once(benchmark, _run_service_bench, tmp_path / "cache")
    record_block("service", block)
    assert block["coalesce_rate"] > 0.5   # 8 clients, same grid
    assert block["submit_p95_ms"] < 5000
