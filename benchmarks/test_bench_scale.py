"""Paper-shaped sharded sweep: streamed generation into the shard
store, windowed trace extraction, full cluster model — with wall and
peak-RSS budgets asserted in-test.

This is the benchmark the out-of-core tier exists for: at
``REPRO_BENCH_SCALE=large`` both matrices exceed 10M nonzeros (queen
~14.7M, europe ~18M) yet the sweep stays inside a CI-sized resident
set, because traces come back as disk-backed windows and the model
releases each node's window after its scatter stage.

At ``paper`` scale the full model is out of reach by design (Table-6
row counts); only generation and trace extraction are expected to fit,
so the sweep skips itself there — the trace-extraction-only row below
is the benchmark that *does* run at paper scale: streamed generation
into the shard store plus a full windowed-trace walk (touch, classify
remote, release), no kernel dispatch.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.config import NetSparseConfig
from repro.partition import TraceCache, build_partition, set_trace_cache
from repro.sparse.shards import is_sharded
from repro.sparse.suite import load_benchmark

from conftest import peak_rss_mb, run_once

#: The two matrices that clear 10M nnz at scale=large.
SWEEP = ("queen", "europe")
K = 16

#: Per-scale (wall seconds, peak RSS MiB) budgets.  RSS is a
#: process-wide high-water mark shared with whatever ran earlier in a
#: combined session, so the numbers are generous; the dedicated CI leg
#: runs this file alone at scale=large, where the budget bites.
#: Measured locally at large: ~15s wall, ~1.1GiB peak RSS.  The large
#: budgets leave slow-runner headroom but sit well below what a dense
#: (unsharded) run of the same sweep would need, so a regression that
#: silently drops the out-of-core path fails here.
BUDGETS = {
    "tiny": (120, 2048),
    "small": (240, 2560),
    "medium": (900, 3072),
    "large": (600, 3072),
}

#: Resident-trace budget for the sweep's TraceCache (idx elements).
SPILL_NNZ = 32 * 1024 * 1024


def _sweep(scale: str):
    cfg = NetSparseConfig()
    topo = build_cluster_topology(cfg)
    out = {}
    for name in SWEEP:
        mat = load_benchmark(name, scale, sharded=True)
        assert is_sharded(mat)
        out[name] = (mat.nnz, simulate_netsparse(mat, K, cfg, topo))
    return out


def test_bench_sharded_sweep(benchmark, scale):
    if scale not in BUDGETS:
        pytest.skip("paper scale: generation + traces only, no model")
    wall_budget, rss_budget = BUDGETS[scale]
    prev = set_trace_cache(TraceCache(max_resident_nnz=SPILL_NNZ))
    t0 = time.perf_counter()
    try:
        results = run_once(benchmark, _sweep, scale=scale)
    finally:
        set_trace_cache(prev)
    elapsed = time.perf_counter() - t0

    for name, (nnz, res) in results.items():
        assert res.total_time > 0
        if scale == "large":
            assert nnz >= 10_000_000, (name, nnz)
    assert elapsed < wall_budget, f"wall {elapsed:.0f}s > {wall_budget}s"
    rss = peak_rss_mb()
    assert rss < rss_budget, f"peak RSS {rss:.0f}MiB > {rss_budget}MiB"


#: Trace-extraction-only row (ROADMAP item 3 follow-on): matrices,
#: (wall s, peak RSS MiB) budgets.  Paper scale sticks to queen — the
#: smallest Table-6 matrix is already ~200M nonzeros, which exercises
#: the whole sharded path (streamed generation, shard store, windowed
#: extraction) without the multi-hour europe generation.  Measured
#: locally at paper: ~32s wall end to end.
TRACE_ONLY = {
    "tiny": (("queen", "europe"), 120, 2048),
    "small": (("queen", "europe"), 240, 2560),
    "medium": (("queen", "europe"), 600, 3072),
    "large": (("queen", "europe"), 600, 3072),
    "paper": (("queen",), 900, 6144),
}

N_NODES = 128


def _extract_traces(scale: str, matrices):
    """Generation + windowed trace walk only — no kernel dispatch."""
    out = {}
    for name in matrices:
        mat = load_benchmark(name, scale, sharded=True)
        assert is_sharded(mat)
        part = build_partition(mat, N_NODES)
        total = remote = 0
        for tr in part.node_traces():
            total += int(tr.n_nonzeros)
            remote += int(tr.remote.sum())
            tr.release()               # bounded-resident walk
        out[name] = (mat.nnz, total, remote)
    return out


def test_bench_trace_extraction(benchmark, scale):
    matrices, wall_budget, rss_budget = TRACE_ONLY[scale]
    t0 = time.perf_counter()
    results = run_once(benchmark, _extract_traces, scale, matrices)
    elapsed = time.perf_counter() - t0

    for name, (nnz, total, remote) in results.items():
        assert total == nnz, (name, total, nnz)   # every nonzero walked
        assert 0 < remote < nnz, name
        if scale == "paper":
            assert nnz >= 100_000_000, (name, nnz)
    assert elapsed < wall_budget, f"wall {elapsed:.0f}s > {wall_budget}s"
    rss = peak_rss_mb()
    assert rss < rss_budget, f"peak RSS {rss:.0f}MiB > {rss_budget}MiB"
