"""Benchmarks regenerating the sensitivity studies: Figures 15-18.

The paper's qualitative claims are about paper-scale behavior, and hold
from ``small`` scale up.  At ``REPRO_BENCH_SCALE=tiny`` (the CI smoke
pass) the matrices are too small for them — the sweeps still run and
are timed, but only basic sanity is asserted.
"""

from conftest import PAPER_CLAIMS, run_once

from repro.experiments import run_experiment


def _sane(table):
    assert table.rows
    assert all(row[-1] > 0 for row in table.rows)


def test_fig15(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig15", scale=scale)
    _sane(table)
    if not PAPER_CLAIMS:
        return
    for name in ("arabic", "queen"):
        rows = [(r[1], r[2]) for r in table.rows if r[0] == name]
        speeds = [s for _, s in rows]
        # The best batch size is interior: both extremes lose.
        best = speeds.index(max(speeds))
        assert best not in (0, len(speeds) - 1)
        # Tiny batches pay dearly for per-command host overhead.
        assert speeds[0] < 0.8 * max(speeds)


def test_fig16(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig16", scale=scale)
    _sane(table)
    if not PAPER_CLAIMS:
        return
    for name in ("arabic", "europe", "queen", "stokes", "uk"):
        by_units = {r[1]: r[2] for r in table.rows if r[0] == name}
        # The curve flattens: 32 -> 64 units adds much less than
        # 2 -> 32 (the paper's "no significant gains past 32").
        gain_to_32 = by_units[32] - by_units[2]
        gain_past_32 = by_units[64] - by_units[32]
        assert gain_past_32 <= max(gain_to_32, 0.2)
    # PR-generation-bound matrices gain substantially from more units;
    # fabric-bound stokes is unit-count-insensitive (within 20%).
    growth = {
        r[0]: r[2]
        for r in table.rows
        if r[1] == 32
    }
    assert growth["arabic"] > 4 and growth["queen"] > 2
    assert growth["stokes"] > 0.8


def test_fig17(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig17", scale=scale)
    _sane(table)
    if not PAPER_CLAIMS:
        return
    for name in ("arabic", "europe", "queen", "uk"):
        by_delay = {r[1]: r[2] for r in table.rows if r[0] == name}
        # Moderate delay beats none; enormous delay gives it back.
        assert by_delay[500] > 1.0
        assert by_delay[50_000] < by_delay[500]
    # queen/europe (strong destination locality / many PRs per window)
    # gain more from concatenation than arabic does.
    q = {r[1]: r[2] for r in table.rows if r[0] == "queen"}
    a = {r[1]: r[2] for r in table.rows if r[0] == "arabic"}
    assert q[500] > a[500]


def test_fig18(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig18", scale=scale)
    _sane(table)
    if not PAPER_CLAIMS:
        return

    def series(name):
        return {r[1]: r[2] for r in table.rows if r[0] == name}

    arabic, stokes = series("arabic"), series("stokes")
    # Caching helps arabic substantially; stokes gains at most
    # marginally at realistic sizes (paper: "does not improve stokes").
    assert arabic["inf"] > 1.2
    assert stokes[32] < 1.1
    assert stokes["inf"] < arabic[32]
    # Monotone in capacity, saturating by the default 32 MB.
    assert arabic[2] <= arabic[8] <= arabic[32] * 1.01
    assert arabic[32] > 0.9 * arabic["inf"]
