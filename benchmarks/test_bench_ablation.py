"""Benchmark regenerating Table 8 (mechanism ablation)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table8(benchmark, scale):
    table = run_once(benchmark, run_experiment, "table8", scale=scale)

    def spd(matrix, k, level):
        for row in table.rows:
            if row[0] == matrix and row[1] == k and row[2] == level:
                return row[3]
        raise KeyError((matrix, k, level))

    # Cumulative mechanisms never hurt (allowing small window noise).
    levels = ["RIG", "Filter", "Coalesce", "ConcNIC", "Switch"]
    for matrix in ("arabic", "europe"):
        for k in (1, 16, 128):
            seq = [spd(matrix, k, lvl) for lvl in levels]
            for a, b in zip(seq, seq[1:]):
                assert b >= a * 0.9
    # Paper claims: filtering is the big step for the denser arabic;
    # for sparse europe the RIG offload alone captures most of the win.
    assert spd("arabic", 16, "Filter") > 3 * spd("arabic", 16, "RIG")
    assert spd("europe", 16, "RIG") > 0.5 * spd("europe", 16, "Coalesce")
    # The full switch (cache + cross-node concat) is the top row.
    assert spd("arabic", 16, "Switch") == max(
        spd("arabic", 16, lvl) for lvl in levels
    )
