"""Benchmarks regenerating the headline results: Figs 12-14, 19, Table 7."""

from conftest import PAPER_CLAIMS, run_once

from repro.experiments import run_experiment


def test_fig12(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig12", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    gmean = table.row_by("matrix", "gmean")
    ns_gmean, sa_gmean = gmean[2], gmean[3]
    # Paper: NetSparse 33x over SUOpt, 15x over SAOpt (gmean).  Same
    # order of magnitude and the same ordering must hold.
    assert 10 < ns_gmean < 120
    assert ns_gmean > 5 * sa_gmean
    # Speedups grow from K=1 to K=16 for every matrix (paper claim).
    by_key = {(r[0], r[1]): r[2] for r in table.rows if r[0] != "gmean"}
    for name in ("arabic", "europe", "queen", "stokes", "uk"):
        assert by_key[(name, 16)] > by_key[(name, 1)]


def test_table7(benchmark, scale):
    table = run_once(benchmark, run_experiment, "table7", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    fc = dict(zip(table.column("matrix"), table.column("F+C %")))
    cache = dict(zip(table.column("matrix"), table.column("$hit %")))
    trfc = dict(zip(table.column("matrix"), table.column("-trfc vs SU")))
    # Paper shape: heavy F+C for arabic/queen/stokes, negligible for
    # europe; cache helps web crawls, not europe/stokes; traffic
    # reductions are tens-to-hundreds x.
    assert fc["arabic"] > 80 and fc["queen"] > 70
    assert fc["europe"] < 20
    assert cache["europe"] < 15 and cache["stokes"] < 15
    assert cache["arabic"] > cache["europe"]
    assert all(t > 5 for t in trfc.values())
    assert trfc["arabic"] > trfc["queen"]


def test_fig13(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig13", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    g = table.row_by("matrix", "gmean")
    su, sa, ns, ideal = g[2], g[3], g[4], g[5]
    # Paper: 0.7x / 3x / 38x / 72x.  Orderings and magnitudes:
    assert su < 5                       # software SU barely scales
    assert su < sa < ns <= ideal
    assert ns > 10                      # NetSparse enables real scaling
    assert ideal < 128                  # compute imbalance caps scaling


def test_fig14(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig14", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    sa = dict(zip(table.column("matrix"), table.column("SAOpt comm/comp")))
    ns = dict(
        zip(table.column("matrix"), table.column("NetSparse comm/comp"))
    )
    # SAOpt is communication-dominated everywhere; NetSparse brings the
    # ratio near (or below) 1 for the cache/filter-friendly matrices.
    assert all(sa[m] > 5 for m in sa)
    assert all(ns[m] < sa[m] for m in ns)
    assert ns["arabic"] < 3


def test_fig19(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig19", scale=scale)

    def active_at_80(name):
        rows = [r for r in table.rows if r[0] == name]
        vals = [r[2] for r in rows if abs(r[1] - 0.8) < 0.06]
        assert vals
        return vals[0]

    # Communication imbalance: for the hub-skewed web crawls, most
    # nodes finish long before the tail (paper: a long low-activity
    # tail for almost all matrices).
    for name in ("arabic", "uk"):
        assert active_at_80(name) < 64
    # The regular banded queen stays balanced (paper's exception).
    assert active_at_80("queen") > 96
