"""Benchmarks for the execution engine: cold vs warm cache, fan-out.

The cold benchmark measures real simulation through the engine into an
empty cache; the warm benchmark replays the identical batch from disk
and asserts it is dramatically faster and answered entirely by hits.
"""

from __future__ import annotations

import numpy as np

from repro.config import NetSparseConfig
from repro.parallel import ExecutionEngine, ResultCache, SimJob

from conftest import run_once


def _batch(scale: str):
    return [
        SimJob(scheme=scheme, matrix=name, k=16, config=NetSparseConfig(),
               scale_name=scale)
        for name in ("queen", "uk")
        for scheme in ("netsparse", "saopt", "suopt")
    ]


def test_bench_engine_cold(benchmark, scale, tmp_path):
    jobs = _batch(scale)
    with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
        results = run_once(benchmark, eng.run_jobs, jobs)
        assert eng.stats.executed == len(jobs)
    assert all(r.total_time > 0 for r in results)


def test_bench_engine_warm(benchmark, scale, tmp_path):
    jobs = _batch(scale)
    with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
        cold = eng.run_jobs(jobs)
    with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
        warm = run_once(benchmark, eng.run_jobs, jobs)
        assert eng.stats.cache_hits == len(jobs)
        assert eng.stats.executed == 0
        # The cache must hold (and report) the simulation time it saves.
        assert eng.stats.saved_seconds > 0
    for a, b in zip(cold, warm):
        assert a.total_time == b.total_time
        np.testing.assert_array_equal(a.per_node_time, b.per_node_time)


def test_bench_engine_parallel(benchmark, scale, tmp_path):
    jobs = _batch(scale)
    with ExecutionEngine(jobs=1) as eng:
        serial = eng.run_jobs(jobs)
    with ExecutionEngine(jobs=4, cache=ResultCache(tmp_path)) as eng:
        par = run_once(benchmark, eng.run_jobs, jobs)
    for a, b in zip(serial, par):
        assert a.total_time == b.total_time
