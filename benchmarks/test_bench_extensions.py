"""Benchmarks for the extension studies (beyond the paper's artifacts)."""

from conftest import PAPER_CLAIMS, run_once

from repro.experiments import run_experiment


def test_sharing(benchmark, scale):
    table = run_once(benchmark, run_experiment, "sharing", scale=scale)
    shared = dict(zip(table.column("matrix"), table.column("shared PRs %")))
    # The web crawls (shared hubs) dominate; meaningful sharing exists
    # everywhere the paper's caching argument relies on it.
    assert shared["arabic"] > 50 and shared["uk"] > 50
    assert shared["mean"] > 25


def test_des_validation(benchmark):
    table = run_once(benchmark, run_experiment, "des_validation")
    ratios = table.column("byte ratio")
    # Two independent implementations agree on traffic within 2x.
    assert all(0.5 < r < 2.0 for r in ratios)
    for row in table.rows:
        # The DES never issues more PRs than the trace model's
        # window-approximated filter (its filter state is exact).
        assert row[1] <= row[2] * 1.05


def test_concat_virtualization(benchmark):
    table = run_once(benchmark, run_experiment, "concat_virtualization")
    by_design = {r[0]: r for r in table.rows}
    dedicated = by_design["dedicated (2*127 CQs)"]
    ample = by_design["virtual pool=256"]
    starved = by_design["virtual pool=16"]
    # Ample virtual pool matches dedicated packing with less SRAM.
    assert ample[1] <= dedicated[1] * 1.02
    assert ample[3] < dedicated[3]
    # Starved pool degrades packing but still beats no concatenation.
    assert starved[2] < ample[2]
    assert starved[2] > 1.5


def test_autotune(benchmark, scale):
    table = run_once(benchmark, run_experiment, "autotune", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    speedups = table.column("speedup vs static")
    probes = table.column("probes")
    # Tuning never loses to the static choice and helps somewhere.
    assert all(s >= 0.999 for s in speedups)
    assert max(speedups) > 1.2
    assert all(p <= 14 for p in probes)


def test_spgemm_preview(benchmark):
    table = run_once(benchmark, run_experiment, "spgemm_preview")
    fc = table.column("F+C %")
    over = table.column("SU overfetch x")
    assert all(f > 30 for f in fc)        # row-request reuse is filterable
    assert all(o > 5 for o in over)       # SU replication is wasteful


def test_iterative(benchmark, scale):
    table = run_once(benchmark, run_experiment, "iterative", scale=scale)
    rows = [r for r in table.rows if r[0] == "arabic"]
    by_frac = {r[1]: r for r in rows}
    # Sampling halves keep less traffic and adds jitter.
    assert by_frac[0.25][4] < by_frac[1.0][4]
    assert by_frac[0.25][3] >= by_frac[1.0][3]


def test_cache_policy(benchmark, scale):
    table = run_once(benchmark, run_experiment, "cache_policy", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    for row in table.rows:
        lru, fifo, rnd = row[1], row[2], row[3]
        # All policies land in the same band on these streams; LRU is
        # never beaten by more than a couple of points.
        assert lru >= fifo - 2.5
        assert lru >= rnd - 2.5
        assert lru > 20


def test_scaling(benchmark, scale):
    table = run_once(benchmark, run_experiment, "scaling", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    for name in ("arabic", "europe", "queen"):
        rows = [r for r in table.rows if r[0] == name]
        speedups = [r[2] for r in rows]
        # The NetSparse advantage over SU widens monotonically with N.
        assert speedups == sorted(speedups)
        assert speedups[-1] > 2 * speedups[0]


def test_hybrid_baseline(benchmark, scale):
    table = run_once(benchmark, run_experiment, "hybrid_baseline",
                     scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    vs_sa = table.column("hybrid/SAOpt x")
    ns_over = table.column("NS over hybrid x")
    # The hybrid never loses to SAOpt (it degenerates to it), and
    # NetSparse beats even this strongest software baseline everywhere.
    assert all(v >= 0.99 for v in vs_sa)
    assert all(x > 2 for x in ns_over)


def test_comm_energy(benchmark, scale):
    table = run_once(benchmark, run_experiment, "comm_energy", scale=scale)
    vs_su = table.column("vs SU x")
    vs_sa = table.column("vs SA x")
    assert all(v > 5 for v in vs_su)
    assert all(v > 20 for v in vs_sa)


def test_latency_profile(benchmark):
    table = run_once(benchmark, run_experiment, "latency_profile")
    for row in table.rows:
        _, count, p50, p90, p99, mx = row
        assert count > 0
        assert 0 < p50 <= p90 <= p99 <= mx


def test_partitioning(benchmark, scale):
    table = run_once(benchmark, run_experiment, "partitioning", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    by = {r[0]: r for r in table.rows}
    # Balancing collapses nnz imbalance on the skewed crawls...
    assert by["arabic"][1] > 1.5 and by["arabic"][2] < 1.2
    # ...and the end-to-end effect is a (possibly small) win there.
    assert by["arabic"][4] >= 1.0
    # Already-balanced matrices are unaffected (within 10%).
    for name in ("europe", "queen"):
        assert 0.9 < by[name][4] < 1.1
