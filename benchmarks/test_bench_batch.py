"""A/B benchmark for the batch planner: ``REPRO_BATCH`` off vs on.

Each sweep-bound experiment row runs three legs at **tiny** scale — a
warm-up (fills the suite/trace caches both modes share), a timed
legacy leg (``REPRO_BATCH=0``: every job replays every stage) and a
timed batch leg (planner + fused memos) — with the batch-mode memos
reset and a fresh engine per leg, so the A/B isolates exactly the
machinery this flag gates.  The tables must be bit-identical; the
session's ``BENCH_<date>.json`` gains a ``batch`` block with per-row
wall times, speedups and the fold ratio (jobs folded per reuse
profile built).

Tiny scale is deliberate: it is the planner's acceptance bar (the
sweep structure, not the matrix size, is what batching folds) and it
keeps the A/B cheap enough to run in every bench session regardless
of ``REPRO_BENCH_SCALE``.
"""

import time

import pytest
from conftest import record_block

from repro.cluster import batch_stats, reset_batch_state
from repro.core.batchmode import use_batch
from repro.experiments import run_experiment
from repro.parallel import ExecutionEngine, engine_scope

#: The sweep-bound rows: knob grids over shared traces, where the
#: planner folds sweep points into single-pass groups.
ROWS = ("fig15", "fig16", "fig17", "fig18", "autotune", "table8")

#: Rows the acceptance bar draws from; at least MIN_FAST of them must
#: halve their wall time.  fig18 (capacity sweep: one profile scores
#: the whole grid) is the headline; fig17 and table8 provide margin.
MIN_FAST = 2

_BLOCK = {"scale": "tiny", "rows": {}}


def _leg(exp_id, mode):
    """One timed run: fresh memos, fresh engine, forced mode."""
    reset_batch_state()
    with use_batch(mode), engine_scope(ExecutionEngine()) as eng:
        t0 = time.perf_counter()
        table = run_experiment(exp_id, scale="tiny")
        wall = time.perf_counter() - t0
        stats = eng.stats
    return table, wall, stats


@pytest.mark.parametrize("exp_id", ROWS)
def test_batch_ab(exp_id):
    _leg(exp_id, True)                      # warm shared caches
    legacy, wall_off, _ = _leg(exp_id, False)
    batched, wall_on, eng_stats = _leg(exp_id, True)
    profile = batch_stats()["profile"]

    identical = (legacy.columns == batched.columns
                 and legacy.rows == batched.rows)
    assert identical, f"{exp_id}: batch mode changed the table"

    built = int(profile["profiles_built"])
    folded = int(eng_stats.batched)
    row = {
        "wall_off_s": round(wall_off, 4),
        "wall_on_s": round(wall_on, 4),
        "speedup": round(wall_off / wall_on, 3) if wall_on else 0.0,
        "identical": identical,
        "executed": int(eng_stats.executed),
        "folded": folded,
        "profiles_built": built,
        "fold_ratio": round(folded / built, 3) if built else 0.0,
        "profile_paths": {
            k: int(profile[k])
            for k in ("closed_form", "hybrid", "delegated")
        },
    }
    _BLOCK["rows"][exp_id] = row
    record_block("batch", _BLOCK)


def test_batch_speedup_floor():
    """The acceptance bar: >= 2x wall reduction on at least MIN_FAST
    sweep-bound rows, with every row bit-identical."""
    rows = _BLOCK["rows"]
    assert len(rows) == len(ROWS), "run the per-row A/B tests first"
    assert all(r["identical"] for r in rows.values())
    fast = [e for e, r in rows.items() if r["speedup"] >= 2.0]
    _BLOCK["fast_rows"] = sorted(fast)
    _BLOCK["min_fast"] = MIN_FAST
    record_block("batch", _BLOCK)
    assert len(fast) >= MIN_FAST, (
        f"only {fast} reached 2x; speedups: "
        f"{ {e: r['speedup'] for e, r in rows.items()} }"
    )
