"""Benchmarks regenerating the §9.6 studies: Figures 21 and 22."""

from conftest import PAPER_CLAIMS, run_once

from repro.experiments import run_experiment


def test_fig21(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig21", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return

    def gmean_row(cpu):
        for r in table.rows:
            if r[0] == cpu and r[1] == "gmean":
                return r
        raise KeyError(cpu)

    ddr, hbm = gmean_row("SPR+DDR"), gmean_row("SPR+HBM")
    # Ordering SUOpt < SAOpt < NetSparse holds on both CPUs.
    assert ddr[2] < ddr[3] < ddr[4]
    assert hbm[2] < hbm[3] < hbm[4]
    # Faster local compute (HBM) exposes communication more: every
    # scheme's scaling drops relative to the DDR machine (paper claim).
    assert hbm[2] < ddr[2]
    assert hbm[3] < ddr[3]
    assert hbm[4] < ddr[4]
    # NetSparse still delivers an order of magnitude on both.
    assert hbm[4] > 10


def test_fig22(benchmark, scale):
    table = run_once(benchmark, run_experiment, "fig22", scale=scale)
    by = {(r[0], r[1]): r[2] for r in table.rows}
    matrices = ("arabic", "europe", "queen", "stokes", "uk")
    # NetSparse keeps large speedups on every fabric...
    for topo in ("leafspine", "hyperx", "dragonfly"):
        for m in matrices:
            assert by[(topo, m)] > 3
    # ...and stokes (rack-crossing coupled traffic) is the most
    # topology-sensitive matrix (paper: >2x swing off leaf-spine).
    swings = {
        m: max(by[(t, m)] for t in ("leafspine", "hyperx", "dragonfly"))
        / min(by[(t, m)] for t in ("leafspine", "hyperx", "dragonfly"))
        for m in matrices
    }
    assert swings["stokes"] == max(swings.values())
    assert swings["stokes"] > 2
