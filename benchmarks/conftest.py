"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure through the
experiment registry, timing a single full run (``rounds=1`` — these are
multi-second cluster simulations, not microseconds) and asserting the
paper's qualitative claims on the output.

Set ``REPRO_BENCH_SCALE=tiny`` for a fast smoke pass or ``medium`` for
closer structural statistics.  At ``tiny`` the matrices are too small
for the paper's quantitative claims, so benchmarks only assert basic
sanity (``PAPER_CLAIMS`` is False); from ``small`` up they assert the
paper's qualitative behavior too.

Every session additionally appends to the repo's perf trajectory: a
machine-readable ``BENCH_<date>.json`` (per-experiment wall time plus
key table metrics) is written at session end — to the repository root
by default, or ``$REPRO_BENCH_OUT`` — so run-over-run regressions
inside the pipeline are diffable, not just eyeballable.
"""

import json
import os
import platform
import resource
import time

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Whether the paper's qualitative claims are expected to hold at SCALE.
PAPER_CLAIMS = SCALE != "tiny"

#: One record per `run_once` call, drained into BENCH_<date>.json.
_BENCH_RECORDS = []

#: Named top-level payload blocks (e.g. the service latency report)
#: registered by benchmarks via `record_block`.
_BENCH_EXTRA = {}


def record_block(name: str, data: dict) -> None:
    """Attach a named block to the session's BENCH_<date>.json payload.

    For benchmark outputs that aren't a single timed experiment — the
    service benchmark's latency/throughput/coalesce report, for
    example.  Re-registering a name overwrites it."""
    _BENCH_EXTRA[str(name)] = data


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(autouse=True)
def _isolate_from_ambient_store(monkeypatch):
    """Benchmarks assert cold-path behavior against their own tmp
    caches; an ambient ``REPRO_STORE_DSN`` (warm from an earlier run)
    would turn those cold misses into store hits and break
    executed-count assertions.  Benches that want a store open one on
    a tmp DSN.  Restored after each test, so the session-end artifact
    upload below still sees the variable."""
    monkeypatch.delenv("REPRO_STORE_DSN", raising=False)


def peak_rss_mb() -> float:
    """High-water resident set of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux, bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":
        peak //= 1024
    return round(peak / 1024.0, 1)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    elapsed = time.perf_counter() - t0
    record = {
        "test": os.environ.get("PYTEST_CURRENT_TEST", "").split(" ")[0],
        "wall_s": round(elapsed, 4),
        # High-water mark *so far* — monotone across records; the
        # payload-level memory block holds the session-wide peak.
        "peak_rss_mb": peak_rss_mb(),
    }
    exp_id = getattr(result, "exp_id", None)
    if exp_id is None and args and isinstance(args[0], str):
        exp_id = args[0]
    if exp_id is not None:
        record["experiment"] = exp_id
    rows = getattr(result, "rows", None)
    if rows is not None:
        record["n_rows"] = len(rows)
    _BENCH_RECORDS.append(record)
    return result


def pytest_sessionfinish(session, exitstatus):
    """Emit the machine-readable perf trajectory entry."""
    if not _BENCH_RECORDS and not _BENCH_EXTRA:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_OUT",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    date = time.strftime("%Y-%m-%d")
    payload = {
        "schema": "repro.bench/v1",
        "date": date,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": SCALE,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exitstatus": int(getattr(exitstatus, "value", exitstatus)),
        "total_wall_s": round(sum(r["wall_s"] for r in _BENCH_RECORDS), 3),
        "results": sorted(_BENCH_RECORDS, key=lambda r: r["test"]),
    }
    memory = {"peak_rss_mb": peak_rss_mb()}
    try:
        from repro.partition import get_trace_cache
        from repro.sparse.suite import suite_cache_stats

        memory["suite_cache"] = suite_cache_stats()
        memory["trace_cache"] = get_trace_cache().stats()
    except Exception:
        pass
    payload["memory"] = memory
    payload.update(_BENCH_EXTRA)
    try:
        from repro.parallel import get_engine

        payload["engine"] = get_engine().stats.summary()
    except Exception:
        pass
    path = os.path.join(out_dir, f"BENCH_{date}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[bench] wrote {path} ({len(_BENCH_RECORDS)} results)")
    if os.environ.get("REPRO_STORE_DSN"):
        # Mirror the snapshot into the result store's artifact table so
        # `bench_compare.py --from-store` can diff runs that never share
        # a filesystem (two CI machines, laptop vs. devbox).
        try:
            from repro.store import store_from_env

            store = store_from_env()
            sha = store.put_artifact(
                json.dumps(payload, indent=2).encode("utf-8"),
                kind="bench", name=os.path.basename(path),
                meta={"scale": SCALE})
            print(f"[bench] stored snapshot as artifact {sha[:12]}")
        except Exception as exc:
            print(f"[bench] store upload skipped: {exc}")
