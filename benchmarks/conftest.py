"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure through the
experiment registry, timing a single full run (``rounds=1`` — these are
multi-second cluster simulations, not microseconds) and asserting the
paper's qualitative claims on the output.

Set ``REPRO_BENCH_SCALE=tiny`` for a fast smoke pass or ``medium`` for
closer structural statistics.  At ``tiny`` the matrices are too small
for the paper's quantitative claims, so benchmarks only assert basic
sanity (``PAPER_CLAIMS`` is False); from ``small`` up they assert the
paper's qualitative behavior too.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Whether the paper's qualitative claims are expected to hold at SCALE.
PAPER_CLAIMS = SCALE != "tiny"


@pytest.fixture(scope="session")
def scale():
    return SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
