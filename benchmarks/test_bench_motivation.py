"""Benchmarks regenerating the motivation artifacts: Tables 1-4, Fig 10."""

from conftest import PAPER_CLAIMS, run_once

from repro.experiments import run_experiment


def test_table1(benchmark, scale):
    table = run_once(benchmark, run_experiment, "table1", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    su = dict(zip(table.column("matrix"), table.column("SU 1:X")))
    sa = dict(zip(table.column("matrix"), table.column("SA 1:X")))
    # SU redundancy is orders of magnitude for every matrix; the web
    # crawls and europe are worst, queen/stokes least (paper ordering).
    assert all(v > 10 for k, v in su.items())
    assert su["arabic"] > su["queen"] and su["arabic"] > su["stokes"]
    # SA redundancy: arabic reuses most, europe essentially none.
    assert sa["arabic"] == max(sa.values())
    assert sa["europe"] < 0.2


def test_table2(benchmark, scale):
    table = run_once(benchmark, run_experiment, "table2", scale=scale)
    utils = table.column("line util %")
    # The motivation claim: vanilla SA leaves >99% of the line idle.
    assert all(u < 1.0 for u in utils)
    rates = dict(zip(table.column("matrix"), table.column("rate Gbps")))
    assert rates["europe"] < rates["arabic"]


def test_table3(benchmark):
    table = run_once(benchmark, run_experiment, "table3")
    ours = table.column("header %")
    paper = table.column("paper %")
    for got, expect in zip(ours, paper):
        assert abs(got - expect) < 3.0
    assert ours == sorted(ours, reverse=True)


def test_table4(benchmark, scale):
    table = run_once(benchmark, run_experiment, "table4", scale=scale)
    if not PAPER_CLAIMS:
        assert table.rows
        return
    dests = dict(zip(table.column("matrix"), table.column("unique dests")))
    assert dests["queen"] < 1.5                  # near-perfect locality
    assert dests["queen"] == min(dests.values())
    assert dests["europe"] > dests["stokes"]


def test_fig10(benchmark):
    table = run_once(benchmark, run_experiment, "fig10")
    k16 = [(c, g) for k, c, g in table.rows if k == 16]
    # Linear scaling with cores, ~10% at 64 cores, K=16.
    assert k16[-1][0] == 64
    assert 5 < k16[-1][1] < 20
    goodputs = [g for _, g in k16]
    assert goodputs == sorted(goodputs)
