"""Benchmarks regenerating the hardware-overhead artifacts: Fig 20, Table 9."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig20(benchmark):
    table = run_once(benchmark, run_experiment, "fig20")
    by_name = {r[0]: r for r in table.rows}
    total = by_name["TOTAL"]
    # Paper: ~1.43 mm^2, ~2.1 W at max activity.
    assert 1.0 < total[1] < 2.0
    assert 1.0 < (total[2] + total[3]) / 1000 < 3.5
    # L2s dominate area; RIG Units dominate dynamic power.
    parts = {k: v for k, v in by_name.items() if k != "TOTAL"}
    assert max(parts, key=lambda s: parts[s][1]) == "L2s"
    assert max(parts, key=lambda s: parts[s][3]) == "RIG Units"


def test_table9(benchmark):
    table = run_once(benchmark, run_experiment, "table9")
    shares = dict(zip(table.column("structure"), table.column("area %")))
    assert max(shares, key=shares.get) == "Pend. PR Table"
    assert 40 <= shares["Pend. PR Table"] <= 65
    assert 97 <= sum(shares.values()) <= 103  # rounded percentages


def test_switch_overheads(benchmark):
    table = run_once(benchmark, run_experiment, "switch_overheads")
    total = table.row_by("structure", "TOTAL")
    # Paper: ~22.8 mm^2, ~10 W.
    assert 15 < total[1] < 30
    assert 5 < total[2] < 15
