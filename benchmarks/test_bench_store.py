"""Result-store benchmark: put/get/ledger micro-throughput.

The store sits on the hot path of every cache miss once
``REPRO_STORE_DSN`` is set, so its per-operation overhead is part of
the perf trajectory: this benchmark pushes a batch of array-bearing
:class:`~repro.cluster.model.CommResult` payloads through
``put_result``/``get_result`` and a matching stream of ledger rows
through ``record_run``/``history``, recording ops/sec per surface into
``BENCH_<date>.json`` under a top-level ``"store"`` key.

Bit-identity is asserted, not just measured: a result read back from
the store must round-trip every array exactly (same dtype, same bits),
because a store-backed cache hit replaces recomputation.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.model import CommResult
from repro.store import open_store

from conftest import record_block, run_once

N_RESULTS = 64
N_LEDGER = 256


def _fake_result(seed: int) -> CommResult:
    rng = np.random.default_rng(seed)
    return CommResult(
        scheme="netsparse", matrix_name="arabic", k=16, n_nodes=8,
        total_time=rng.random() * 1e-3,
        per_node_time=rng.random(8),
        recv_wire_bytes=rng.integers(0, 1 << 40, 8),
        sent_wire_bytes=rng.integers(0, 1 << 40, 8),
        useful_payload_bytes=rng.integers(0, 1 << 40, 8),
        link_bandwidth=12.5e9,
        extras={"spill": rng.random(32).astype(np.float32)},
    )


def _run_store_bench(dsn: str) -> dict:
    store = open_store(dsn)
    results = {f"{'f' * 54}{i:010d}": _fake_result(i)
               for i in range(N_RESULTS)}

    t0 = time.perf_counter()
    for digest, res in results.items():
        assert store.put_result(digest, res, elapsed=0.01)
    put_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for digest, res in results.items():
        rec = store.get_result(digest)
        back = rec.result
        assert back.total_time == res.total_time
        assert np.array_equal(back.per_node_time, res.per_node_time)
        arr = back.extras["spill"]
        assert arr.dtype == np.float32
        assert np.array_equal(arr, res.extras["spill"])
    get_s = time.perf_counter() - t0

    digests = list(results)
    t0 = time.perf_counter()
    for i in range(N_LEDGER):
        store.record_run(digests[i % N_RESULTS], source="cache",
                         elapsed=0.01, experiment="bench")
    ledger_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rows = store.history(experiment="bench", limit=N_LEDGER)
    history_s = time.perf_counter() - t0
    assert len(rows) == N_LEDGER

    info = store.describe()
    assert info["results"] == N_RESULTS
    return {
        "n_results": N_RESULTS,
        "n_ledger_rows": N_LEDGER,
        "put_ops_per_s": round(N_RESULTS / put_s, 1),
        "get_ops_per_s": round(N_RESULTS / get_s, 1),
        "ledger_ops_per_s": round(N_LEDGER / ledger_s, 1),
        "history_query_ms": round(history_s * 1e3, 2),
        "db_size_mb": round(info.get("size_bytes", 0) / 1e6, 2),
    }


def test_bench_store(benchmark, scale, tmp_path):
    if scale in ("large", "paper"):
        pytest.skip("store bench is scale-free; fixed payload batch")
    dsn = f"sqlite:///{tmp_path}/store.sqlite3"
    block = run_once(benchmark, _run_store_bench, dsn)
    record_block("store", block)
    assert block["put_ops_per_s"] > 5      # far below any healthy sqlite
    assert block["get_ops_per_s"] > 5
