"""Microbenchmarks for the fast hot-loop kernels.

These publish kernel-level wall times into the same ``BENCH_<date>.json``
artifact as the table benchmarks, so a regression in one kernel is
visible in ``scripts/bench_compare.py`` even when the end-to-end walls
hide it behind caching.  Workloads are sized by ``REPRO_BENCH_SCALE``
and exercise the shapes the 128-node cluster model actually feeds the
kernels (skewed PR streams, rack-merged destination streams, batched
RIG dispatch).
"""

from types import SimpleNamespace

import numpy as np

from conftest import run_once

from repro.core.concat import window_concat
from repro.core.pcache_fast import delayed_cache_hits
from repro.core.rig import rig_generation_time

#: Stream lengths per REPRO_BENCH_SCALE.
_SIZES = {"tiny": 100_000, "small": 1_000_000, "medium": 4_000_000}


def _stream_len(scale):
    return _SIZES.get(scale, _SIZES["small"])


def _pcache_workload(stream):
    hits, stats = delayed_cache_hits(
        stream, n_sets=4096, ways=16, delay=2000
    )
    return SimpleNamespace(
        exp_id="kernel.pcache", hits=int(hits.sum()), stats=stats
    )


def _concat_workload(dests):
    stats = window_concat(dests, max_prs_per_packet=11, window_prs=64)
    return SimpleNamespace(exp_id="kernel.concat", stats=stats)


def _rig_workload(sizes):
    total = 0.0
    for n_idxs in sizes:
        total += rig_generation_time(int(n_idxs), n_units=4, batch_size=32)
    return SimpleNamespace(exp_id="kernel.rig", total=total)


def test_kernel_pcache(benchmark, scale):
    rng = np.random.default_rng(1)
    stream = rng.zipf(1.3, size=_stream_len(scale)) % (1 << 20)
    result = run_once(benchmark, _pcache_workload, stream)
    assert result.stats.lookups == stream.size
    assert 0 < result.hits < stream.size


def test_kernel_concat(benchmark, scale):
    rng = np.random.default_rng(2)
    dests = rng.integers(0, 128, size=_stream_len(scale))
    result = run_once(benchmark, _concat_workload, dests)
    assert result.stats.n_prs == dests.size
    assert 0 < result.stats.n_packets <= dests.size


def test_kernel_rig(benchmark, scale):
    rng = np.random.default_rng(3)
    sizes = rng.integers(1, _stream_len(scale) // 10, size=200)
    result = run_once(benchmark, _rig_workload, sizes)
    assert result.total > 0.0
