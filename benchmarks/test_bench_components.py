"""Microbenchmarks of the core components (throughput numbers).

These complement the experiment benchmarks with component-level rates:
filter/coalesce throughput over idx streams, window concatenation,
property-cache accesses, and the DES engine's event rate.
"""

import numpy as np
import pytest

from repro.core.concat import window_concat
from repro.core.filtering import filter_and_coalesce
from repro.core.pcache import PropertyCache
from repro.network import LeafSpine
from repro.sim import Simulator, Store


@pytest.fixture(scope="module")
def idx_stream():
    rng = np.random.default_rng(0)
    return rng.integers(0, 100_000, size=1_000_000)


def test_filter_coalesce_throughput(benchmark, idx_stream):
    result = benchmark(
        filter_and_coalesce, idx_stream,
        n_units=16, batch_size=32 * 1024, inflight_window=4096,
    )
    assert result.n_issued > 0


def test_window_concat_throughput(benchmark):
    rng = np.random.default_rng(1)
    dests = rng.integers(0, 128, size=1_000_000)
    stats = benchmark(window_concat, dests, 17, 128)
    assert stats.n_prs == 1_000_000


def test_property_cache_access_rate(benchmark):
    rng = np.random.default_rng(2)
    idxs = rng.integers(0, 50_000, size=100_000).tolist()

    def run():
        cache = PropertyCache(capacity_bytes=1 << 20, ways=16)
        cache.configure(64)
        hits = 0
        for idx in idxs:
            if cache.lookup(idx):
                hits += 1
            else:
                cache.insert(idx)
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_des_engine_event_rate(benchmark):
    def run():
        sim = Simulator()
        store = Store(sim, capacity=64)

        def producer():
            for i in range(20_000):
                yield store.put(i)

        def consumer():
            for _ in range(20_000):
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return sim.events_dispatched

    events = benchmark(run)
    assert events > 40_000


def test_route_cache_throughput(benchmark):
    topo = LeafSpine()
    pairs = [(s, d) for s in range(0, 128, 7) for d in range(128) if s != d]

    def run():
        return sum(len(topo.route(s, d)) for s, d in pairs)

    hops = benchmark(run)
    assert hops > 0


def test_trace_build_throughput(benchmark):
    from repro.partition import OneDPartition
    from repro.sparse.suite import load_benchmark

    mat = load_benchmark("queen", "small")
    part = OneDPartition(mat, 128)
    traces = benchmark(part.node_traces)
    assert sum(t.n_nonzeros for t in traces) == mat.nnz
